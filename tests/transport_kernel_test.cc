#include "linalg/transport_kernel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/cost_provider.h"
#include "linalg/parallel_for.h"
#include "ot/cost.h"
#include "ot/sinkhorn.h"
#include "prob/domain.h"

namespace otclean::linalg {
namespace {

Matrix RandomCost(size_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * 3.0;
  return cost;
}

Vector RandomMarginal(size_t n, uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
  v.Normalize();
  return v;
}

// ------------------------------------------------------------ primitives --

TEST(TransportKernelTest, DensePrimitivesMatchMatrixOps) {
  const Matrix cost = RandomCost(7, 5, 11);
  const Matrix k = cost.GibbsKernel(0.3);
  const DenseTransportKernel kernel(k, /*num_threads=*/1);
  const Vector v = RandomMarginal(5, 12);
  const Vector u = RandomMarginal(7, 13);

  Vector kv, ktu;
  kernel.Apply(v, kv);
  kernel.ApplyTranspose(u, ktu);
  EXPECT_TRUE(kv.ApproxEquals(k.MatVec(v), 1e-15));
  EXPECT_TRUE(ktu.ApproxEquals(k.TransposeMatVec(u), 1e-15));
  EXPECT_TRUE(
      kernel.ScaleToPlan(u, v).ApproxEquals(k.ScaleRowsCols(u, v), 1e-15));
  EXPECT_NEAR(kernel.TransportCost(cost, u, v),
              cost.FrobeniusDot(k.ScaleRowsCols(u, v)), 1e-12);
}

TEST(TransportKernelTest, SparsePrimitivesMatchDenseAtCutoffZero) {
  const Matrix cost = RandomCost(9, 6, 21);
  const DenseTransportKernel dense =
      DenseTransportKernel::FromCost(cost, 0.25, 1);
  const SparseTransportKernel sparse =
      SparseTransportKernel::FromCost(cost, 0.25, 0.0, 1);
  EXPECT_EQ(sparse.nnz(), dense.nnz());

  const Vector v = RandomMarginal(6, 22);
  const Vector u = RandomMarginal(9, 23);
  Vector dkv, skv, dktu, sktu;
  dense.Apply(v, dkv);
  sparse.Apply(v, skv);
  dense.ApplyTranspose(u, dktu);
  sparse.ApplyTranspose(u, sktu);
  EXPECT_TRUE(skv.ApproxEquals(dkv, 1e-15));
  EXPECT_TRUE(sktu.ApproxEquals(dktu, 1e-15));
  EXPECT_TRUE(sparse.ScaleToPlan(u, v).ApproxEquals(dense.ScaleToPlan(u, v),
                                                    1e-15));
  EXPECT_TRUE(sparse.ScaleToPlanSparse(u, v).ToDense().ApproxEquals(
      dense.ScaleToPlan(u, v), 1e-15));
  EXPECT_NEAR(sparse.TransportCost(cost, u, v),
              dense.TransportCost(cost, u, v), 1e-13);
}

TEST(TransportKernelTest, TruncationDropsEntries) {
  const Matrix cost = RandomCost(12, 12, 31);
  const SparseTransportKernel full =
      SparseTransportKernel::FromCost(cost, 0.2, 0.0, 1);
  const SparseTransportKernel cut =
      SparseTransportKernel::FromCost(cost, 0.2, 1e-3, 1);
  EXPECT_EQ(full.nnz(), 144u);
  EXPECT_LT(cut.nnz(), full.nnz());
  EXPECT_GT(cut.nnz(), 0u);
}

// --------------------------------------------------- streamed costs ------

TEST(CostProviderTest, MatrixProviderStreamsTheBackingMatrix) {
  const Matrix cost = RandomCost(6, 9, 101);
  const MatrixCostProvider provider(cost);
  ASSERT_EQ(provider.rows(), 6u);
  ASSERT_EQ(provider.cols(), 9u);
  EXPECT_EQ(provider.AsMatrix(), &cost);
  std::vector<double> tile(4);
  provider.Fill(2, 3, 7, tile.data());
  for (size_t c = 0; c < 4; ++c) EXPECT_EQ(tile[c], cost(2, c + 3));
  const std::vector<size_t> idx{8, 0, 5};
  std::vector<double> gathered(3);
  provider.Gather(4, idx.data(), idx.size(), gathered.data());
  for (size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(gathered[k], cost(4, idx[k]));
  }
  EXPECT_TRUE(MaterializeCostMatrix(provider).ApproxEquals(cost, 0.0));
}

TEST(CostProviderTest, FunctionProviderMatchesBuildCostMatrix) {
  const prob::Domain dom = prob::Domain::FromCardinalities({3, 4, 2});
  const ot::EuclideanCost f(3);
  std::vector<size_t> rows{0, 5, 7, 11, 23};
  std::vector<size_t> cols(dom.TotalSize());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  const ot::FunctionCostProvider provider(dom, rows, cols, f);
  const Matrix built = ot::BuildCostMatrix(dom, rows, cols, f);
  ASSERT_EQ(provider.rows(), built.rows());
  ASSERT_EQ(provider.cols(), built.cols());
  EXPECT_EQ(provider.AsMatrix(), nullptr);
  EXPECT_TRUE(MaterializeCostMatrix(provider).ApproxEquals(built, 0.0));
  for (size_t r = 0; r < provider.rows(); ++r) {
    for (size_t c = 0; c < provider.cols(); ++c) {
      EXPECT_EQ(provider.At(r, c), built(r, c));
    }
  }
}

TEST(TransportKernelTest, StreamedGibbsKernelMatchesDenseBuiltKernel) {
  // The truncated kernel built by streaming the cost provider must be
  // bit-identical to the one built from a materialized cost matrix — at
  // cutoff 0 (every entry survives) and at a truncating cutoff.
  const prob::Domain dom = prob::Domain::FromCardinalities({4, 3, 3});
  const ot::HammingCost f;
  const ot::FunctionCostProvider provider(dom, f);
  const Matrix cost = ot::BuildCostMatrix(dom, f);
  for (const double cutoff : {0.0, 1e-2}) {
    const SparseMatrix streamed = SparseMatrix::GibbsKernel(provider, 0.4,
                                                            cutoff);
    const SparseMatrix built = SparseMatrix::GibbsKernel(cost, 0.4, cutoff);
    ASSERT_EQ(streamed.nnz(), built.nnz()) << "cutoff " << cutoff;
    EXPECT_TRUE(streamed.ToDense().ApproxEquals(built.ToDense(), 0.0))
        << "cutoff " << cutoff;
    if (cutoff > 0.0) {
      EXPECT_LT(streamed.nnz(), dom.TotalSize() * dom.TotalSize());
    }
  }
}

TEST(TransportKernelTest, StreamedTransportCostMatchesDenseCost) {
  const prob::Domain dom = prob::Domain::FromCardinalities({3, 3, 4});
  const ot::EuclideanCost f(3);
  const ot::FunctionCostProvider provider(dom, f);
  const Matrix cost = ot::BuildCostMatrix(dom, f);
  const size_t n = dom.TotalSize();
  const Vector u = RandomMarginal(n, 111);
  const Vector v = RandomMarginal(n, 112);
  for (const double cutoff : {0.0, 5e-2}) {
    const SparseTransportKernel streamed =
        SparseTransportKernel::FromCost(provider, 0.3, cutoff, 1);
    const SparseTransportKernel built =
        SparseTransportKernel::FromCost(cost, 0.3, cutoff, 1);
    ASSERT_EQ(streamed.nnz(), built.nnz());
    // Identical kernels, and ⟨C, π⟩ evaluated from the streamed provider
    // (support gathers) equals the dense-cost evaluation.
    EXPECT_EQ(streamed.TransportCost(provider, u, v),
              built.TransportCost(cost, u, v))
        << "cutoff " << cutoff;
  }
  // The dense kernel's streamed TransportCost (tile path) agrees with its
  // zero-copy in-memory path.
  const DenseTransportKernel dense = DenseTransportKernel::FromCost(cost, 0.3,
                                                                    1);
  EXPECT_NEAR(dense.TransportCost(provider, u, v),
              dense.TransportCost(cost, u, v), 1e-13);
}

TEST(TransportKernelTest, CachedSupportCostsMatchStreamedTransportCost) {
  // GatherSupportCosts + SupportTransportCost (what FastOTClean's outer
  // loop uses to avoid re-evaluating the cost function every iteration)
  // must be bit-identical to streaming the provider each time.
  const prob::Domain dom = prob::Domain::FromCardinalities({3, 4, 3});
  const ot::EuclideanCost f(3);
  const ot::FunctionCostProvider provider(dom, f);
  const size_t n = dom.TotalSize();
  const Vector u = RandomMarginal(n, 131);
  const Vector v = RandomMarginal(n, 132);
  const SparseTransportKernel kernel =
      SparseTransportKernel::FromCost(provider, 0.3, 2e-2, 1);
  const std::vector<double> cached = kernel.GatherSupportCosts(provider);
  ASSERT_EQ(cached.size(), kernel.nnz());
  EXPECT_EQ(kernel.SupportTransportCost(cached, u, v),
            kernel.TransportCost(provider, u, v));
}

TEST(UnifiedSinkhornTest, ProviderAndMatrixSparseSolvesAreIdentical) {
  // RunSinkhornSparse(CostProvider) is THE entry point; the Matrix overload
  // wraps it. Both must produce identical plans, potentials, and costs.
  const prob::Domain dom = prob::Domain::FromCardinalities({4, 2, 3});
  const ot::EuclideanCost f(3);
  const ot::FunctionCostProvider provider(dom, f);
  const Matrix cost = ot::BuildCostMatrix(dom, f);
  const size_t n = dom.TotalSize();
  const Vector p = RandomMarginal(n, 121);
  const Vector q = RandomMarginal(n, 122);
  ot::SinkhornOptions opts;
  opts.epsilon = 0.25;
  opts.relaxed = true;
  opts.num_threads = 1;
  const auto streamed =
      ot::RunSinkhornSparse(provider, p, q, opts, 1e-3).value();
  const auto dense_arg = ot::RunSinkhornSparse(cost, p, q, opts, 1e-3).value();
  EXPECT_EQ(streamed.iterations, dense_arg.iterations);
  EXPECT_EQ(streamed.transport_cost, dense_arg.transport_cost);
  EXPECT_TRUE(streamed.u.ApproxEquals(dense_arg.u, 0.0));
  EXPECT_TRUE(streamed.v.ApproxEquals(dense_arg.v, 0.0));
  EXPECT_TRUE(
      streamed.plan.ToDense().ApproxEquals(dense_arg.plan.ToDense(), 0.0));
}

// ------------------------------------------------- thread determinism ----

TEST(TransportKernelTest, DensePrimitivesBitIdenticalAcrossThreadCounts) {
  // Sizes large enough that the work-based grain actually engages multiple
  // workers, and awkward enough to give uneven chunk boundaries.
  const size_t m = 137, n = 151;
  const Matrix cost = RandomCost(m, n, 41);
  const Vector u = RandomMarginal(m, 42);
  const Vector v = RandomMarginal(n, 43);
  const DenseTransportKernel serial(cost.GibbsKernel(0.3), 1);
  Vector kv1, ktu1;
  serial.Apply(v, kv1);
  serial.ApplyTranspose(u, ktu1);
  const Matrix plan1 = serial.ScaleToPlan(u, v);
  const double cost1 = serial.TransportCost(cost, u, v);

  for (size_t threads : {2, 3, 5}) {
    const DenseTransportKernel parallel(cost.GibbsKernel(0.3), threads);
    Vector kv, ktu;
    parallel.Apply(v, kv);
    parallel.ApplyTranspose(u, ktu);
    for (size_t i = 0; i < m; ++i) EXPECT_EQ(kv[i], kv1[i]);
    for (size_t j = 0; j < n; ++j) EXPECT_EQ(ktu[j], ktu1[j]);
    EXPECT_TRUE(parallel.ScaleToPlan(u, v).ApproxEquals(plan1, 0.0));
    EXPECT_EQ(parallel.TransportCost(cost, u, v), cost1);
  }
}

TEST(TransportKernelTest, SparsePrimitivesBitIdenticalAcrossThreadCounts) {
  const size_t m = 149, n = 163;
  const Matrix cost = RandomCost(m, n, 51);
  const Vector u = RandomMarginal(m, 52);
  const Vector v = RandomMarginal(n, 53);
  const SparseTransportKernel serial =
      SparseTransportKernel::FromCost(cost, 0.2, 1e-4, 1);
  Vector kv1, ktu1;
  serial.Apply(v, kv1);
  serial.ApplyTranspose(u, ktu1);
  const double cost1 = serial.TransportCost(cost, u, v);

  for (size_t threads : {2, 4}) {
    const SparseTransportKernel parallel =
        SparseTransportKernel::FromCost(cost, 0.2, 1e-4, threads);
    Vector kv, ktu;
    parallel.Apply(v, kv);
    parallel.ApplyTranspose(u, ktu);
    for (size_t i = 0; i < m; ++i) EXPECT_EQ(kv[i], kv1[i]);
    for (size_t j = 0; j < n; ++j) EXPECT_EQ(ktu[j], ktu1[j]);
    EXPECT_EQ(parallel.TransportCost(cost, u, v), cost1);
  }
}

// ------------------------------------------- unified solver equivalence --

TEST(UnifiedSinkhornTest, DenseAndSparseCutoffZeroProduceIdenticalResults) {
  const Matrix cost = RandomCost(15, 15, 61);
  const Vector p = RandomMarginal(15, 62);
  const Vector q = RandomMarginal(15, 63);
  for (const bool relaxed : {false, true}) {
    ot::SinkhornOptions opts;
    opts.epsilon = 0.15;
    opts.relaxed = relaxed;
    opts.num_threads = 1;
    const auto dense = ot::RunSinkhorn(cost, p, q, opts).value();
    const auto sparse = ot::RunSinkhornSparse(cost, p, q, opts, 0.0).value();
    EXPECT_EQ(sparse.iterations, dense.iterations);
    EXPECT_EQ(sparse.converged, dense.converged);
    EXPECT_TRUE(sparse.plan.ToDense().ApproxEquals(dense.plan, 1e-12));
    EXPECT_TRUE(sparse.u.ApproxEquals(dense.u, 1e-12));
    EXPECT_TRUE(sparse.v.ApproxEquals(dense.v, 1e-12));
    EXPECT_NEAR(sparse.transport_cost, dense.transport_cost, 1e-12);
  }
}

TEST(UnifiedSinkhornTest, SerialAndParallelSolvesAreIdentical) {
  const Matrix cost = RandomCost(143, 131, 71);
  const Vector p = RandomMarginal(143, 72);
  const Vector q = RandomMarginal(131, 73);
  ot::SinkhornOptions serial_opts;
  serial_opts.epsilon = 0.1;
  serial_opts.relaxed = true;
  serial_opts.lambda = 5.0;  // softer exponent: converges in O(10^2) iters
  serial_opts.tolerance = 1e-8;
  serial_opts.num_threads = 1;
  const auto serial = ot::RunSinkhorn(cost, p, q, serial_opts).value();

  ot::SinkhornOptions parallel_opts = serial_opts;
  parallel_opts.num_threads = 4;
  const auto parallel = ot::RunSinkhorn(cost, p, q, parallel_opts).value();

  EXPECT_EQ(parallel.iterations, serial.iterations);
  EXPECT_TRUE(parallel.plan.ApproxEquals(serial.plan, 0.0));
  EXPECT_EQ(parallel.transport_cost, serial.transport_cost);

  const auto sparse_serial =
      ot::RunSinkhornSparse(cost, p, q, serial_opts, 1e-5).value();
  const auto sparse_parallel =
      ot::RunSinkhornSparse(cost, p, q, parallel_opts, 1e-5).value();
  EXPECT_EQ(sparse_parallel.iterations, sparse_serial.iterations);
  EXPECT_TRUE(sparse_parallel.plan.ToDense().ApproxEquals(
      sparse_serial.plan.ToDense(), 0.0));
  EXPECT_EQ(sparse_parallel.transport_cost, sparse_serial.transport_cost);
}

TEST(UnifiedSinkhornTest, WarmStartConvergesInFewerIterations) {
  const Matrix cost = RandomCost(20, 20, 81);
  const Vector p = RandomMarginal(20, 82);
  const Vector q = RandomMarginal(20, 83);
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.relaxed = true;
  opts.tolerance = 1e-11;
  const auto cold = ot::RunSinkhorn(cost, p, q, opts).value();
  ASSERT_TRUE(cold.converged);
  ASSERT_GT(cold.iterations, 1u);
  // Re-solving from the converged potentials must need fewer iterations
  // than the cold solve (Section 5's warm-start optimization).
  const auto warm = ot::RunSinkhorn(cost, p, q, opts, &cold.u, &cold.v).value();
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(UnifiedSinkhornTest, ScalingEntryPointMatchesWrapper) {
  const Matrix cost = RandomCost(8, 8, 91);
  const Vector p = RandomMarginal(8, 92);
  const Vector q = RandomMarginal(8, 93);
  ot::SinkhornOptions opts;
  opts.epsilon = 0.2;
  opts.num_threads = 1;
  const auto wrapped = ot::RunSinkhorn(cost, p, q, opts).value();
  const DenseTransportKernel kernel =
      DenseTransportKernel::FromCost(cost, opts.epsilon, 1);
  const ot::SinkhornScaling scaling =
      ot::RunSinkhornScaling(kernel, p, q, opts).value();
  EXPECT_EQ(scaling.iterations, wrapped.iterations);
  EXPECT_TRUE(scaling.u.ApproxEquals(wrapped.u, 0.0));
  EXPECT_TRUE(scaling.v.ApproxEquals(wrapped.v, 0.0));
  // Mis-sized marginals must error, not read out of bounds.
  EXPECT_FALSE(ot::RunSinkhornScaling(kernel, Vector(3), q, opts).ok());
  EXPECT_FALSE(ot::RunSinkhornScaling(kernel, p, Vector(3), opts).ok());
}

// ------------------------------------------------------- ParallelFor ------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1, 2, 7}) {
    std::vector<int> hits(1000, 0);
    ParallelFor(
        hits.size(), threads,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) ++hits[i];
        },
        /*grain=*/1);
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelForTest, BlockedReduceIsThreadCountInvariant) {
  std::vector<double> values(10000);
  Rng rng(99);
  for (double& v : values) v = rng.NextDouble() - 0.5;
  auto block_sum = [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) s += values[i];
    return s;
  };
  const double serial = BlockedReduce(values.size(), 1, block_sum);
  for (size_t threads : {2, 3, 8}) {
    EXPECT_EQ(BlockedReduce(values.size(), threads, block_sum), serial);
  }
}

}  // namespace
}  // namespace otclean::linalg
