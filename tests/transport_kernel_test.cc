#include "linalg/transport_kernel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/parallel_for.h"
#include "ot/sinkhorn.h"

namespace otclean::linalg {
namespace {

Matrix RandomCost(size_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * 3.0;
  return cost;
}

Vector RandomMarginal(size_t n, uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
  v.Normalize();
  return v;
}

// ------------------------------------------------------------ primitives --

TEST(TransportKernelTest, DensePrimitivesMatchMatrixOps) {
  const Matrix cost = RandomCost(7, 5, 11);
  const Matrix k = cost.GibbsKernel(0.3);
  const DenseTransportKernel kernel(k, /*num_threads=*/1);
  const Vector v = RandomMarginal(5, 12);
  const Vector u = RandomMarginal(7, 13);

  Vector kv, ktu;
  kernel.Apply(v, kv);
  kernel.ApplyTranspose(u, ktu);
  EXPECT_TRUE(kv.ApproxEquals(k.MatVec(v), 1e-15));
  EXPECT_TRUE(ktu.ApproxEquals(k.TransposeMatVec(u), 1e-15));
  EXPECT_TRUE(
      kernel.ScaleToPlan(u, v).ApproxEquals(k.ScaleRowsCols(u, v), 1e-15));
  EXPECT_NEAR(kernel.TransportCost(cost, u, v),
              cost.FrobeniusDot(k.ScaleRowsCols(u, v)), 1e-12);
}

TEST(TransportKernelTest, SparsePrimitivesMatchDenseAtCutoffZero) {
  const Matrix cost = RandomCost(9, 6, 21);
  const DenseTransportKernel dense =
      DenseTransportKernel::FromCost(cost, 0.25, 1);
  const SparseTransportKernel sparse =
      SparseTransportKernel::FromCost(cost, 0.25, 0.0, 1);
  EXPECT_EQ(sparse.nnz(), dense.nnz());

  const Vector v = RandomMarginal(6, 22);
  const Vector u = RandomMarginal(9, 23);
  Vector dkv, skv, dktu, sktu;
  dense.Apply(v, dkv);
  sparse.Apply(v, skv);
  dense.ApplyTranspose(u, dktu);
  sparse.ApplyTranspose(u, sktu);
  EXPECT_TRUE(skv.ApproxEquals(dkv, 1e-15));
  EXPECT_TRUE(sktu.ApproxEquals(dktu, 1e-15));
  EXPECT_TRUE(sparse.ScaleToPlan(u, v).ApproxEquals(dense.ScaleToPlan(u, v),
                                                    1e-15));
  EXPECT_TRUE(sparse.ScaleToPlanSparse(u, v).ToDense().ApproxEquals(
      dense.ScaleToPlan(u, v), 1e-15));
  EXPECT_NEAR(sparse.TransportCost(cost, u, v),
              dense.TransportCost(cost, u, v), 1e-13);
}

TEST(TransportKernelTest, TruncationDropsEntries) {
  const Matrix cost = RandomCost(12, 12, 31);
  const SparseTransportKernel full =
      SparseTransportKernel::FromCost(cost, 0.2, 0.0, 1);
  const SparseTransportKernel cut =
      SparseTransportKernel::FromCost(cost, 0.2, 1e-3, 1);
  EXPECT_EQ(full.nnz(), 144u);
  EXPECT_LT(cut.nnz(), full.nnz());
  EXPECT_GT(cut.nnz(), 0u);
}

// ------------------------------------------------- thread determinism ----

TEST(TransportKernelTest, DensePrimitivesBitIdenticalAcrossThreadCounts) {
  // Sizes large enough that the work-based grain actually engages multiple
  // workers, and awkward enough to give uneven chunk boundaries.
  const size_t m = 137, n = 151;
  const Matrix cost = RandomCost(m, n, 41);
  const Vector u = RandomMarginal(m, 42);
  const Vector v = RandomMarginal(n, 43);
  const DenseTransportKernel serial(cost.GibbsKernel(0.3), 1);
  Vector kv1, ktu1;
  serial.Apply(v, kv1);
  serial.ApplyTranspose(u, ktu1);
  const Matrix plan1 = serial.ScaleToPlan(u, v);
  const double cost1 = serial.TransportCost(cost, u, v);

  for (size_t threads : {2, 3, 5}) {
    const DenseTransportKernel parallel(cost.GibbsKernel(0.3), threads);
    Vector kv, ktu;
    parallel.Apply(v, kv);
    parallel.ApplyTranspose(u, ktu);
    for (size_t i = 0; i < m; ++i) EXPECT_EQ(kv[i], kv1[i]);
    for (size_t j = 0; j < n; ++j) EXPECT_EQ(ktu[j], ktu1[j]);
    EXPECT_TRUE(parallel.ScaleToPlan(u, v).ApproxEquals(plan1, 0.0));
    EXPECT_EQ(parallel.TransportCost(cost, u, v), cost1);
  }
}

TEST(TransportKernelTest, SparsePrimitivesBitIdenticalAcrossThreadCounts) {
  const size_t m = 149, n = 163;
  const Matrix cost = RandomCost(m, n, 51);
  const Vector u = RandomMarginal(m, 52);
  const Vector v = RandomMarginal(n, 53);
  const SparseTransportKernel serial =
      SparseTransportKernel::FromCost(cost, 0.2, 1e-4, 1);
  Vector kv1, ktu1;
  serial.Apply(v, kv1);
  serial.ApplyTranspose(u, ktu1);
  const double cost1 = serial.TransportCost(cost, u, v);

  for (size_t threads : {2, 4}) {
    const SparseTransportKernel parallel =
        SparseTransportKernel::FromCost(cost, 0.2, 1e-4, threads);
    Vector kv, ktu;
    parallel.Apply(v, kv);
    parallel.ApplyTranspose(u, ktu);
    for (size_t i = 0; i < m; ++i) EXPECT_EQ(kv[i], kv1[i]);
    for (size_t j = 0; j < n; ++j) EXPECT_EQ(ktu[j], ktu1[j]);
    EXPECT_EQ(parallel.TransportCost(cost, u, v), cost1);
  }
}

// ------------------------------------------- unified solver equivalence --

TEST(UnifiedSinkhornTest, DenseAndSparseCutoffZeroProduceIdenticalResults) {
  const Matrix cost = RandomCost(15, 15, 61);
  const Vector p = RandomMarginal(15, 62);
  const Vector q = RandomMarginal(15, 63);
  for (const bool relaxed : {false, true}) {
    ot::SinkhornOptions opts;
    opts.epsilon = 0.15;
    opts.relaxed = relaxed;
    opts.num_threads = 1;
    const auto dense = ot::RunSinkhorn(cost, p, q, opts).value();
    const auto sparse = ot::RunSinkhornSparse(cost, p, q, opts, 0.0).value();
    EXPECT_EQ(sparse.iterations, dense.iterations);
    EXPECT_EQ(sparse.converged, dense.converged);
    EXPECT_TRUE(sparse.plan.ToDense().ApproxEquals(dense.plan, 1e-12));
    EXPECT_TRUE(sparse.u.ApproxEquals(dense.u, 1e-12));
    EXPECT_TRUE(sparse.v.ApproxEquals(dense.v, 1e-12));
    EXPECT_NEAR(sparse.transport_cost, dense.transport_cost, 1e-12);
  }
}

TEST(UnifiedSinkhornTest, SerialAndParallelSolvesAreIdentical) {
  const Matrix cost = RandomCost(143, 131, 71);
  const Vector p = RandomMarginal(143, 72);
  const Vector q = RandomMarginal(131, 73);
  ot::SinkhornOptions serial_opts;
  serial_opts.epsilon = 0.1;
  serial_opts.relaxed = true;
  serial_opts.lambda = 5.0;  // softer exponent: converges in O(10^2) iters
  serial_opts.tolerance = 1e-8;
  serial_opts.num_threads = 1;
  const auto serial = ot::RunSinkhorn(cost, p, q, serial_opts).value();

  ot::SinkhornOptions parallel_opts = serial_opts;
  parallel_opts.num_threads = 4;
  const auto parallel = ot::RunSinkhorn(cost, p, q, parallel_opts).value();

  EXPECT_EQ(parallel.iterations, serial.iterations);
  EXPECT_TRUE(parallel.plan.ApproxEquals(serial.plan, 0.0));
  EXPECT_EQ(parallel.transport_cost, serial.transport_cost);

  const auto sparse_serial =
      ot::RunSinkhornSparse(cost, p, q, serial_opts, 1e-5).value();
  const auto sparse_parallel =
      ot::RunSinkhornSparse(cost, p, q, parallel_opts, 1e-5).value();
  EXPECT_EQ(sparse_parallel.iterations, sparse_serial.iterations);
  EXPECT_TRUE(sparse_parallel.plan.ToDense().ApproxEquals(
      sparse_serial.plan.ToDense(), 0.0));
  EXPECT_EQ(sparse_parallel.transport_cost, sparse_serial.transport_cost);
}

TEST(UnifiedSinkhornTest, WarmStartConvergesInFewerIterations) {
  const Matrix cost = RandomCost(20, 20, 81);
  const Vector p = RandomMarginal(20, 82);
  const Vector q = RandomMarginal(20, 83);
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.relaxed = true;
  opts.tolerance = 1e-11;
  const auto cold = ot::RunSinkhorn(cost, p, q, opts).value();
  ASSERT_TRUE(cold.converged);
  ASSERT_GT(cold.iterations, 1u);
  // Re-solving from the converged potentials must need fewer iterations
  // than the cold solve (Section 5's warm-start optimization).
  const auto warm = ot::RunSinkhorn(cost, p, q, opts, &cold.u, &cold.v).value();
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(UnifiedSinkhornTest, ScalingEntryPointMatchesWrapper) {
  const Matrix cost = RandomCost(8, 8, 91);
  const Vector p = RandomMarginal(8, 92);
  const Vector q = RandomMarginal(8, 93);
  ot::SinkhornOptions opts;
  opts.epsilon = 0.2;
  opts.num_threads = 1;
  const auto wrapped = ot::RunSinkhorn(cost, p, q, opts).value();
  const DenseTransportKernel kernel =
      DenseTransportKernel::FromCost(cost, opts.epsilon, 1);
  const ot::SinkhornScaling scaling =
      ot::RunSinkhornScaling(kernel, p, q, opts).value();
  EXPECT_EQ(scaling.iterations, wrapped.iterations);
  EXPECT_TRUE(scaling.u.ApproxEquals(wrapped.u, 0.0));
  EXPECT_TRUE(scaling.v.ApproxEquals(wrapped.v, 0.0));
  // Mis-sized marginals must error, not read out of bounds.
  EXPECT_FALSE(ot::RunSinkhornScaling(kernel, Vector(3), q, opts).ok());
  EXPECT_FALSE(ot::RunSinkhornScaling(kernel, p, Vector(3), opts).ok());
}

// ------------------------------------------------------- ParallelFor ------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1, 2, 7}) {
    std::vector<int> hits(1000, 0);
    ParallelFor(
        hits.size(), threads,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) ++hits[i];
        },
        /*grain=*/1);
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelForTest, BlockedReduceIsThreadCountInvariant) {
  std::vector<double> values(10000);
  Rng rng(99);
  for (double& v : values) v = rng.NextDouble() - 0.5;
  auto block_sum = [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) s += values[i];
    return s;
  };
  const double serial = BlockedReduce(values.size(), 1, block_sum);
  for (size_t threads : {2, 3, 8}) {
    EXPECT_EQ(BlockedReduce(values.size(), threads, block_sum), serial);
  }
}

}  // namespace
}  // namespace otclean::linalg
