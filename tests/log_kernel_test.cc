// LogTransportKernel + log-domain Sinkhorn coverage: streamed-LSE
// primitives against libm references per SIMD tier, dense/CSR kernel
// agreement, log ≡ linear plan agreement at moderate ε (dense and
// sparse-at-cutoff-0), the small-ε regime where only the log domain
// survives, zero-mass marginal handling, thread-count bit-identity, the
// finite↔−inf convergence-delta fix, warm-start size validation, and the
// hardened input validation (negative marginals, non-finite costs).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "core/fast_otclean.h"
#include "core/repair.h"
#include "datagen/synthetic.h"
#include "linalg/log_transport_kernel.h"
#include "linalg/simd.h"
#include "linalg/simd_exp.h"
#include "ot/cost.h"
#include "ot/sinkhorn.h"
#include "prob/domain.h"
#include "prob/independence.h"

namespace otclean {
namespace {

using linalg::DenseLogTransportKernel;
using linalg::Matrix;
using linalg::SparseLogTransportKernel;
using linalg::Vector;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

Matrix RandomCost(size_t m, size_t n, uint64_t seed, double scale = 3.0) {
  Rng rng(seed);
  Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * scale;
  return cost;
}

Vector RandomMarginal(size_t n, uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
  v.Normalize();
  return v;
}

/// libm reference LSE over L_row + lv.
double ReferenceLse(const Matrix& log_kernel, size_t row, const Vector& lv) {
  double mx = kNegInf;
  for (size_t j = 0; j < log_kernel.cols(); ++j) {
    mx = std::max(mx, log_kernel(row, j) + lv[j]);
  }
  if (mx == kNegInf) return kNegInf;
  double s = 0.0;
  for (size_t j = 0; j < log_kernel.cols(); ++j) {
    s += std::exp(log_kernel(row, j) + lv[j] - mx);
  }
  return mx + std::log(s);
}

// ------------------------------------------------------- SIMD primitives --

TEST(LogSimdTest, PolyExpMatchesLibmExp) {
  Rng rng(11);
  double max_rel = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = (rng.NextDouble() - 1.0) * 700.0;  // (-700, 0]
    const double rel =
        std::fabs(linalg::simd::PolyExp(x) - std::exp(x)) / std::exp(x);
    max_rel = std::max(max_rel, rel);
  }
  EXPECT_LT(max_rel, 1e-15);
  EXPECT_EQ(linalg::simd::PolyExp(kNegInf), 0.0);
  EXPECT_EQ(linalg::simd::PolyExp(-1000.0), 0.0);
  EXPECT_EQ(linalg::simd::PolyExp(std::nan("")), 0.0);
  EXPECT_EQ(linalg::simd::PolyExp(0.0), 1.0);
}

TEST(LogSimdTest, MaxReductionsBitIdenticalAcrossTiers) {
  Rng rng(12);
  const size_t n = 1003;  // odd: exercises every tail
  std::vector<double> a(n), b(n), x(n);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = (rng.NextDouble() - 0.5) * 40.0;
    b[i] = (rng.NextDouble() - 0.5) * 40.0;
    x[i] = (rng.NextDouble() - 0.5) * 40.0;
    idx[i] = static_cast<size_t>(rng.NextInt(0, static_cast<int64_t>(n) - 1));
  }
  a[17] = kNegInf;  // −inf entries must flow through the max untouched
  linalg::simd::SetIsa(linalg::simd::Isa::kScalar);
  const double m1 = linalg::simd::MaxReduce(a.data(), n);
  const double m2 = linalg::simd::AddMaxReduce(a.data(), b.data(), n);
  const double m3 =
      linalg::simd::GatherAddMaxReduce(a.data(), idx.data(), x.data(), n);
  for (linalg::simd::Isa isa : linalg::simd::SupportedIsas()) {
    linalg::simd::SetIsa(isa);
    EXPECT_EQ(m1, linalg::simd::MaxReduce(a.data(), n))
        << linalg::simd::IsaName(isa);
    EXPECT_EQ(m2, linalg::simd::AddMaxReduce(a.data(), b.data(), n))
        << linalg::simd::IsaName(isa);
    EXPECT_EQ(m3, linalg::simd::GatherAddMaxReduce(a.data(), idx.data(),
                                                   x.data(), n))
        << linalg::simd::IsaName(isa);
  }
  linalg::simd::SetIsa(linalg::simd::ActiveIsa());
  EXPECT_EQ(linalg::simd::MaxReduce(a.data(), 0), kNegInf);
}

TEST(LogSimdTest, ExpSumsMatchScalarWithinUlps) {
  Rng rng(13);
  const size_t n = 517;
  std::vector<double> a(n), b(n), x(n);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = -rng.NextDouble() * 30.0;
    b[i] = -rng.NextDouble() * 30.0;
    x[i] = -rng.NextDouble() * 30.0;
    idx[i] = static_cast<size_t>(rng.NextInt(0, static_cast<int64_t>(n) - 1));
  }
  a[3] = kNegInf;  // contributes exactly 0 in every tier
  linalg::simd::SetIsa(linalg::simd::Isa::kScalar);
  const double s1 = linalg::simd::ExpSumShifted(a.data(), -1.0, n);
  const double s2 = linalg::simd::AddExpSumShifted(a.data(), b.data(), -2.0, n);
  const double s3 = linalg::simd::GatherAddExpSumShifted(a.data(), idx.data(),
                                                         x.data(), -2.0, n);
  for (linalg::simd::Isa isa : linalg::simd::SupportedIsas()) {
    linalg::simd::SetIsa(isa);
    const double tol = 1e-13;
    EXPECT_NEAR(linalg::simd::ExpSumShifted(a.data(), -1.0, n), s1,
                tol * std::fabs(s1))
        << linalg::simd::IsaName(isa);
    EXPECT_NEAR(linalg::simd::AddExpSumShifted(a.data(), b.data(), -2.0, n),
                s2, tol * std::fabs(s2))
        << linalg::simd::IsaName(isa);
    EXPECT_NEAR(linalg::simd::GatherAddExpSumShifted(a.data(), idx.data(),
                                                     x.data(), -2.0, n),
                s3, tol * std::fabs(s3))
        << linalg::simd::IsaName(isa);
  }
  linalg::simd::SetIsa(linalg::simd::ActiveIsa());
}

TEST(LogSimdTest, StripAccumulatorsBitIdenticalAcrossTiers) {
  Rng rng(14);
  const size_t n = 259;
  std::vector<double> a(n), shift(n, -1.5), base_mx(n), base_acc(n, 0.25);
  for (size_t i = 0; i < n; ++i) {
    a[i] = -rng.NextDouble() * 20.0;
    base_mx[i] = -rng.NextDouble() * 20.0;
  }
  linalg::simd::SetIsa(linalg::simd::Isa::kScalar);
  std::vector<double> mx_ref = base_mx, acc_ref = base_acc, out_ref(n);
  linalg::simd::AddMaxAccumulate(0.3, a.data(), mx_ref.data(), n);
  linalg::simd::AddExpSumAccumulate(0.3, a.data(), shift.data(),
                                    acc_ref.data(), n);
  linalg::simd::AddExpWrite(-0.7, a.data(), base_mx.data(), out_ref.data(), n);
  for (linalg::simd::Isa isa : linalg::simd::SupportedIsas()) {
    linalg::simd::SetIsa(isa);
    std::vector<double> mx = base_mx, acc = base_acc, out(n);
    linalg::simd::AddMaxAccumulate(0.3, a.data(), mx.data(), n);
    linalg::simd::AddExpSumAccumulate(0.3, a.data(), shift.data(), acc.data(),
                                      n);
    linalg::simd::AddExpWrite(-0.7, a.data(), base_mx.data(), out.data(), n);
    EXPECT_EQ(mx, mx_ref) << linalg::simd::IsaName(isa);
    EXPECT_EQ(acc, acc_ref) << linalg::simd::IsaName(isa);
    EXPECT_EQ(out, out_ref) << linalg::simd::IsaName(isa);
  }
  linalg::simd::SetIsa(linalg::simd::ActiveIsa());
}

// --------------------------------------------------------------- kernels --

TEST(LogTransportKernelTest, DenseLogApplyMatchesLibmReference) {
  const size_t m = 37, n = 53;
  const Matrix cost = RandomCost(m, n, 21);
  const DenseLogTransportKernel kernel =
      DenseLogTransportKernel::FromCost(cost, 0.07, /*num_threads=*/1);
  Vector lv(n);
  Rng rng(22);
  for (size_t j = 0; j < n; ++j) lv[j] = (rng.NextDouble() - 0.5) * 10.0;
  lv[5] = kNegInf;  // a zero-mass column must simply not contribute
  for (linalg::simd::Isa isa : linalg::simd::SupportedIsas()) {
    linalg::simd::SetIsa(isa);
    Vector out;
    kernel.LogApply(lv, out);
    for (size_t i = 0; i < m; ++i) {
      const double ref = ReferenceLse(kernel.log_kernel(), i, lv);
      EXPECT_NEAR(out[i], ref, 1e-12 * (std::fabs(ref) + 1.0))
          << "row " << i << " isa " << linalg::simd::IsaName(isa);
    }
  }
  linalg::simd::SetIsa(linalg::simd::ActiveIsa());
}

TEST(LogTransportKernelTest, DenseTransposeMatchesApplyOfTransposedKernel) {
  const size_t m = 41, n = 29;
  const Matrix cost = RandomCost(m, n, 31);
  const DenseLogTransportKernel kernel =
      DenseLogTransportKernel::FromCost(cost, 0.11, /*num_threads=*/1);
  const DenseLogTransportKernel kernel_t = DenseLogTransportKernel::FromCost(
      cost.Transposed(), 0.11, /*num_threads=*/1);
  Vector lu(m);
  Rng rng(32);
  for (size_t i = 0; i < m; ++i) lu[i] = (rng.NextDouble() - 0.5) * 8.0;
  lu[7] = kNegInf;
  Vector a, b;
  kernel.LogApplyTranspose(lu, a);
  kernel_t.LogApply(lu, b);
  for (size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(a[j], b[j], 1e-12 * (std::fabs(b[j]) + 1.0)) << j;
  }
}

TEST(LogTransportKernelTest, SparseAtCutoffZeroMatchesDense) {
  const size_t m = 23, n = 31;
  const Matrix cost = RandomCost(m, n, 41);
  const DenseLogTransportKernel dense =
      DenseLogTransportKernel::FromCost(cost, 0.09, /*num_threads=*/1);
  const SparseLogTransportKernel sparse = SparseLogTransportKernel::FromCost(
      cost, 0.09, /*cutoff=*/0.0, /*num_threads=*/1);
  ASSERT_EQ(sparse.nnz(), m * n);
  Vector lv(n), lu(m);
  Rng rng(42);
  for (size_t j = 0; j < n; ++j) lv[j] = (rng.NextDouble() - 0.5) * 6.0;
  for (size_t i = 0; i < m; ++i) lu[i] = (rng.NextDouble() - 0.5) * 6.0;
  Vector yd, ys;
  dense.LogApply(lv, yd);
  sparse.LogApply(lv, ys);
  for (size_t i = 0; i < m; ++i) {
    // Row LSEs share one reduction recipe — bit-identical at full support.
    EXPECT_EQ(yd[i], ys[i]) << i;
  }
  // Plans share per-element arithmetic — bit-identical too.
  const Matrix pd = dense.ScaleToPlan(lu, lv);
  const Matrix ps = sparse.ScaleToPlan(lu, lv);
  for (size_t i = 0; i < pd.data().size(); ++i) {
    EXPECT_EQ(pd.data()[i], ps.data()[i]);
  }
  // Transpose LSEs use different (strip vs CSC-gather) accumulation
  // orders; they agree to rounding.
  Vector td, ts;
  dense.LogApplyTranspose(lu, td);
  sparse.LogApplyTranspose(lu, ts);
  for (size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(td[j], ts[j], 1e-12 * (std::fabs(td[j]) + 1.0)) << j;
  }
}

TEST(LogTransportKernelTest, ThreadCountsBitIdentical) {
  const size_t m = 150, n = 170;
  const Matrix cost = RandomCost(m, n, 51);
  const DenseLogTransportKernel serial =
      DenseLogTransportKernel::FromCost(cost, 0.08, /*num_threads=*/1);
  const DenseLogTransportKernel threaded =
      DenseLogTransportKernel::FromCost(cost, 0.08, /*num_threads=*/4);
  Vector lv = RandomMarginal(n, 52);
  Vector lu = RandomMarginal(m, 53);
  for (size_t j = 0; j < n; ++j) lv[j] = std::log(lv[j]);
  for (size_t i = 0; i < m; ++i) lu[i] = std::log(lu[i]);
  Vector y1, y4, t1, t4;
  serial.LogApply(lv, y1);
  threaded.LogApply(lv, y4);
  serial.LogApplyTranspose(lu, t1);
  threaded.LogApplyTranspose(lu, t4);
  for (size_t i = 0; i < m; ++i) EXPECT_EQ(y1[i], y4[i]) << i;
  for (size_t j = 0; j < n; ++j) EXPECT_EQ(t1[j], t4[j]) << j;
}

// ------------------------------------------------- log ≡ linear solves ---

TEST(LogSinkhornEquivalenceTest, DenseAndSparsePlansMatchLinearPerTier) {
  const size_t m = 12, n = 15;
  const Matrix cost = RandomCost(m, n, 61, 2.0);
  const Vector p = RandomMarginal(m, 62);
  const Vector q = RandomMarginal(n, 63);
  ot::SinkhornOptions lin;
  lin.epsilon = 0.08;
  const auto linear = ot::RunSinkhorn(cost, p, q, lin).value();
  ASSERT_TRUE(linear.converged);
  for (linalg::simd::Isa isa : linalg::simd::SupportedIsas()) {
    linalg::simd::SetIsa(isa);
    ot::SinkhornOptions log = lin;
    log.log_domain = true;
    const auto dense = ot::RunSinkhorn(cost, p, q, log).value();
    EXPECT_TRUE(dense.converged);
    EXPECT_TRUE(dense.plan.ApproxEquals(linear.plan, 1e-7))
        << linalg::simd::IsaName(isa);
    EXPECT_NEAR(dense.transport_cost, linear.transport_cost, 1e-7)
        << linalg::simd::IsaName(isa);
    const auto sparse =
        ot::RunSinkhornSparse(cost, p, q, log, /*kernel_cutoff=*/0.0).value();
    EXPECT_TRUE(sparse.plan.ToDense().ApproxEquals(linear.plan, 1e-7))
        << linalg::simd::IsaName(isa);
    EXPECT_NEAR(sparse.transport_cost, linear.transport_cost, 1e-7)
        << linalg::simd::IsaName(isa);
  }
  linalg::simd::SetIsa(linalg::simd::ActiveIsa());
}

TEST(LogSinkhornEquivalenceTest, TruncatedLogMatchesTruncatedLinear) {
  const size_t m = 14, n = 14;
  const Matrix cost = RandomCost(m, n, 71, 4.0);
  const Vector p = RandomMarginal(m, 72);
  const Vector q = RandomMarginal(n, 73);
  ot::SinkhornOptions opts;
  opts.epsilon = 0.3;
  opts.relaxed = true;  // relaxed: truncation may orphan columns
  opts.lambda = 30.0;
  const double cutoff = 1e-4;
  const auto linear = ot::RunSinkhornSparse(cost, p, q, opts, cutoff).value();
  ot::SinkhornOptions log = opts;
  log.log_domain = true;
  const auto logged = ot::RunSinkhornSparse(cost, p, q, log, cutoff).value();
  ASSERT_EQ(logged.plan.nnz(), linear.plan.nnz());
  ASSERT_LT(logged.plan.nnz(), m * n);  // the cutoff actually truncated
  EXPECT_TRUE(logged.plan.ToDense().ApproxEquals(linear.plan.ToDense(), 1e-7));
  EXPECT_NEAR(logged.transport_cost, linear.transport_cost, 1e-7);
}

TEST(LogSinkhornEquivalenceTest, SmallEpsilonOnlyLogDomainSurvives) {
  // At ε = 1e-3 with costs ~O(1), e^{−C/ε} underflows to an all-zero
  // linear kernel: the linear solve degenerates (mass vanishes) while the
  // log domain converges to a near-exact plan — on the dense AND the
  // truncated sparse path.
  Matrix cost(2, 2, 0.0);
  cost(0, 1) = 1.0;
  cost(1, 0) = 1.0;
  const Vector p(std::vector<double>{0.7, 0.3});
  const Vector q(std::vector<double>{0.4, 0.6});
  ot::SinkhornOptions opts;
  opts.epsilon = 1e-3;
  opts.max_iterations = 5000;

  // The underflowed linear kernel is numerically diagonal — no mass can
  // move — so the linear result cannot pay the true transport cost of
  // 0.3; it reports ~0 against mismatched marginals.
  const auto linear = ot::RunSinkhorn(cost, p, q, opts).value();
  EXPECT_LT(linear.transport_cost, 0.01);

  ot::SinkhornOptions log = opts;
  log.log_domain = true;
  const auto dense = ot::RunSinkhorn(cost, p, q, log).value();
  EXPECT_TRUE(dense.converged);
  EXPECT_NEAR(dense.plan.Sum(), 1.0, 1e-9);
  EXPECT_NEAR(dense.transport_cost, 0.3, 1e-3);  // exact OT cost is 0.3

  const auto sparse =
      ot::RunSinkhornSparse(cost, p, q, log, /*kernel_cutoff=*/0.0).value();
  EXPECT_TRUE(sparse.converged);
  EXPECT_NEAR(sparse.plan.ToDense().Sum(), 1.0, 1e-9);
  EXPECT_NEAR(sparse.transport_cost, 0.3, 1e-3);
}

TEST(LogSinkhornEquivalenceTest, ZeroMassRowsAndColumnsStayEmpty) {
  Matrix cost(3, 3, 0.0);
  cost(0, 1) = 1.0;
  cost(1, 0) = 1.0;
  cost(2, 2) = 0.5;
  const Vector p(std::vector<double>{0.6, 0.4, 0.0});
  const Vector q(std::vector<double>{0.5, 0.0, 0.5});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.log_domain = true;
  const auto dense = ot::RunSinkhorn(cost, p, q, opts).value();
  for (size_t j = 0; j < 3; ++j) EXPECT_EQ(dense.plan(2, j), 0.0);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(dense.plan(i, 1), 0.0);
  EXPECT_EQ(dense.u[2], 0.0);
  EXPECT_EQ(dense.v[1], 0.0);
  EXPECT_NEAR(dense.plan.Sum(), 1.0, 1e-8);

  const auto sparse =
      ot::RunSinkhornSparse(cost, p, q, opts, /*kernel_cutoff=*/0.0).value();
  const Matrix sp = sparse.plan.ToDense();
  for (size_t j = 0; j < 3; ++j) EXPECT_EQ(sp(2, j), 0.0);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(sp(i, 1), 0.0);
}

// ------------------------------------------------------------- bugfixes --

TEST(LogSinkhornBugfixTest, SupportFlipCannotReadAsConvergence) {
  // Relaxed truncated solve on a (numerically) diagonal kernel where
  // column 1 carries no target mass: lv_1 settles at −inf and (row 1
  // reaching only column 1) lu_1 follows. Warm-start at the converged
  // potentials but with v[1] nudged finite: the next iterations flip
  // lv_1 — and transiently lu_1 — between finite and −inf while every
  // OTHER coordinate is already exactly converged (the nudged column is
  // invisible to row 0, whose kernel entry for it is truncated away).
  // The old delta skipped non-finite differences, so the flips read as
  // Δ = 0 and the loop reported convergence at iteration 1. The fix
  // counts a finite↔−inf flip as Δ = ∞: re-convergence takes > 1
  // iteration.
  Matrix cost(2, 2, 0.0);
  cost(0, 1) = 10.0;  // both off-diagonals truncated away at this cutoff/ε
  cost(1, 0) = 10.0;
  const Vector p(std::vector<double>{0.7, 0.3});
  const Vector q(std::vector<double>{1.0, 0.0});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.5;
  opts.relaxed = true;
  opts.lambda = 20.0;
  opts.log_domain = true;
  const double cutoff = 1e-6;  // e^{-20} << cutoff << e^0

  const auto first = ot::RunSinkhornSparse(cost, p, q, opts, cutoff).value();
  ASSERT_TRUE(first.converged);
  ASSERT_EQ(first.v[1], 0.0);  // the no-mass column

  Vector warm_u = first.u;
  Vector warm_v = first.v;
  warm_v[1] = 0.5;  // mass that is about to disappear again
  const auto second =
      ot::RunSinkhornSparse(cost, p, q, opts, cutoff, &warm_u, &warm_v)
          .value();
  EXPECT_TRUE(second.converged);
  EXPECT_GT(second.iterations, 1u)
      << "support flip was skipped by the convergence delta";
  EXPECT_EQ(second.v[1], 0.0);
}

TEST(LogSinkhornBugfixTest, WarmStartSizeMismatchIsAnError) {
  Matrix cost(2, 2, 0.0);
  const Vector p(std::vector<double>{0.5, 0.5});
  const Vector bad(std::vector<double>{1.0, 1.0, 1.0});
  ot::SinkhornOptions opts;
  for (const bool log_domain : {false, true}) {
    opts.log_domain = log_domain;
    const auto r = ot::RunSinkhorn(cost, p, p, opts, &bad, nullptr);
    ASSERT_FALSE(r.ok()) << "log_domain=" << log_domain;
    EXPECT_NE(r.status().ToString().find("warm_u"), std::string::npos);
    const auto rs =
        ot::RunSinkhornSparse(cost, p, p, opts, 0.0, nullptr, &bad);
    ASSERT_FALSE(rs.ok()) << "log_domain=" << log_domain;
    EXPECT_NE(rs.status().ToString().find("warm_v"), std::string::npos);
  }
  // The engine entry points validate too.
  const linalg::DenseTransportKernel kernel =
      linalg::DenseTransportKernel::FromCost(cost, 0.1, 1);
  EXPECT_FALSE(ot::RunSinkhornScaling(kernel, p, p, opts, &bad).ok());
  const DenseLogTransportKernel log_kernel =
      DenseLogTransportKernel::FromCost(cost, 0.1, 1);
  EXPECT_FALSE(ot::RunSinkhornLogScaling(log_kernel, p, p, opts, &bad).ok());
}

TEST(LogSinkhornBugfixTest, NegativeMarginalsAndNonFiniteCostsRejected) {
  Matrix cost(2, 2, 0.0);
  const Vector ok(std::vector<double>{0.5, 0.5});
  const Vector negative(std::vector<double>{0.7, -0.2});
  ot::SinkhornOptions opts;
  {
    const auto r = ot::RunSinkhorn(cost, negative, ok, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("p[1]"), std::string::npos);
  }
  {
    const auto r = ot::RunSinkhornSparse(cost, ok, negative, opts, 0.0);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("q[1]"), std::string::npos);
  }
  Matrix nan_cost = cost;
  nan_cost(1, 0) = std::nan("");
  {
    const auto r = ot::RunSinkhorn(nan_cost, ok, ok, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("cost(1, 0)"), std::string::npos);
  }
  Matrix inf_cost = cost;
  inf_cost(0, 1) = std::numeric_limits<double>::infinity();
  {
    const auto r = ot::RunSinkhornSparse(inf_cost, ok, ok, opts, 0.0);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("cost(0, 1)"), std::string::npos);
  }
  // FastOtClean guards its streamed cost function too — a NaN would
  // otherwise be silently truncated away or flushed to 0 by the kernels.
  {
    const prob::Domain d = prob::Domain::FromCardinalities({2, 2});
    prob::JointDistribution p(d);
    p[0] = 0.5;
    p[3] = 0.5;
    const ot::LambdaCost nan_lambda_cost(
        [](const std::vector<int>&, const std::vector<int>&) {
          return std::nan("");
        });
    core::FastOtCleanOptions fopts;
    Rng rng(99);
    const auto r = core::FastOtClean(p, prob::CiSpec{{0}, {1}, {}},
                                     nan_lambda_cost, fopts, rng);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("cost("), std::string::npos);
  }
}

TEST(LogSinkhornF32Test, DenseAndSparseF32MatchF64WithinKernelRounding) {
  // f32 tier in the LOG domain: the kernel stores log-K (i.e. −C/ε) as
  // float while the LSE reductions accumulate in double, so plans agree
  // with the f64 log solve within the float-rounding envelope of the
  // exponent (≤ 2⁻²⁴ relative on each kernel entry).
  const size_t m = 12, n = 15;
  const Matrix cost = RandomCost(m, n, 101, 2.0);
  const Vector p = RandomMarginal(m, 102);
  const Vector q = RandomMarginal(n, 103);
  ot::SinkhornOptions f64o;
  f64o.epsilon = 0.08;
  f64o.log_domain = true;
  ot::SinkhornOptions f32o = f64o;
  f32o.precision = linalg::Precision::kFloat32;

  const auto dense64 = ot::RunSinkhorn(cost, p, q, f64o).value();
  const auto dense32 = ot::RunSinkhorn(cost, p, q, f32o).value();
  ASSERT_TRUE(dense64.converged);
  ASSERT_TRUE(dense32.converged);
  EXPECT_TRUE(dense32.plan.ApproxEquals(dense64.plan, 1e-5));
  EXPECT_NEAR(dense32.transport_cost, dense64.transport_cost, 1e-5);

  const double cutoff = 1e-4;
  ot::SinkhornOptions sf64 = f64o, sf32 = f32o;
  sf64.relaxed = sf32.relaxed = true;  // truncation may orphan columns
  const auto sparse64 = ot::RunSinkhornSparse(cost, p, q, sf64, cutoff).value();
  const auto sparse32 = ot::RunSinkhornSparse(cost, p, q, sf32, cutoff).value();
  // Shared sparsity contract: the kept-set is decided on the double cost,
  // so both precisions truncate identically.
  ASSERT_EQ(sparse32.plan.nnz(), sparse64.plan.nnz());
  EXPECT_TRUE(
      sparse32.plan.ToDense().ApproxEquals(sparse64.plan.ToDense(), 1e-5));
  EXPECT_NEAR(sparse32.transport_cost, sparse64.transport_cost, 1e-5);
}

TEST(LogSinkhornF32Test, F32LogSolveBitIdenticalAcrossThreadCounts) {
  // Per-(tier, precision) determinism of the f32 log path: thread count
  // must not change the iterate stream (strip-deterministic reductions),
  // so solves are bit-identical — iterations included — at 1 vs 4
  // threads. Tiers are NOT required to match each other bitwise; the
  // cross-tier contract is the ULP envelope covered above.
  const Matrix cost = RandomCost(10, 10, 111, 2.0);
  const Vector p = RandomMarginal(10, 112);
  const Vector q = RandomMarginal(10, 113);
  ot::SinkhornOptions opts;
  opts.epsilon = 0.08;
  opts.log_domain = true;
  opts.precision = linalg::Precision::kFloat32;
  opts.num_threads = 1;
  const auto serial = ot::RunSinkhorn(cost, p, q, opts).value();
  opts.num_threads = 4;
  const auto threaded = ot::RunSinkhorn(cost, p, q, opts).value();
  EXPECT_EQ(threaded.iterations, serial.iterations);
  EXPECT_TRUE(threaded.u.data() == serial.u.data());
  EXPECT_TRUE(threaded.v.data() == serial.v.data());
}

// ------------------------------------------------------------ end to end --

TEST(LogDomainCleanTest, FastOtCleanLogDomainMatchesLinear) {
  const prob::Domain d = prob::Domain::FromCardinalities({2, 2, 2});
  prob::JointDistribution p(d);
  Rng rng(81);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.05 + rng.NextDouble();
  p.Normalize();
  const prob::CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  core::FastOtCleanOptions opts;
  opts.epsilon = 0.1;
  opts.max_outer_iterations = 200;
  Rng rng_lin(82), rng_log(82);
  const auto linear = core::FastOtClean(p, ci, cost, opts, rng_lin).value();
  core::FastOtCleanOptions log_opts = opts;
  log_opts.log_domain = true;
  const auto logged = core::FastOtClean(p, ci, cost, log_opts, rng_log).value();
  EXPECT_LT(logged.target_cmi, 1e-6);
  EXPECT_NEAR(logged.transport_cost, linear.transport_cost, 1e-5);
  EXPECT_NEAR(logged.target_cmi, linear.target_cmi, 1e-6);
}

TEST(LogDomainCleanTest, TruncatedLogDomainRepairReportsDomain) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 800;
  gen.num_z_attrs = 1;
  gen.z_card = 2;
  gen.violation = 0.6;
  gen.seed = 91;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint c({"x"}, {"y"}, {"z0"});
  // Unweighted Euclidean over (x, y, z0): the truncation keeps every x/y
  // flip (the moves a CI repair needs) and drops only far z moves — the
  // default stddev-normalized cost would truncate the kernel to near-
  // diagonal at this cutoff and repair nothing.
  ot::EuclideanCost cost(3);
  core::RepairOptions opts;
  opts.fast.log_domain = true;
  opts.fast.kernel_truncation = 1e-8;
  opts.fast.max_outer_iterations = 60;
  const auto report = core::RepairTable(table, c, opts, &cost).value();
  EXPECT_STREQ(report.sinkhorn_domain, "log");
  EXPECT_TRUE(report.plan_sparse);
  EXPECT_LT(report.final_cmi, report.initial_cmi);
  core::RepairOptions lin = opts;
  lin.fast.log_domain = false;
  const auto lin_report = core::RepairTable(table, c, lin, &cost).value();
  EXPECT_STREQ(lin_report.sinkhorn_domain, "linear");
  EXPECT_NEAR(report.transport_cost, lin_report.transport_cost, 1e-4);
}

}  // namespace
}  // namespace otclean
