// Dense-vs-CSR TransportPlan equivalence and the sparse end-to-end
// guarantee: with kernel truncation on, the plan stays CSR from the solver
// through repair sampling — no dense rows×cols matrix on the path.

#include <gtest/gtest.h>

#include <cmath>

#include "core/ci_constraint.h"
#include "core/fast_otclean.h"
#include "core/repair.h"
#include "datagen/synthetic.h"
#include "linalg/sparse_matrix.h"
#include "ot/cost.h"
#include "ot/plan.h"
#include "ot/sinkhorn.h"

namespace otclean {
namespace {

using linalg::Matrix;
using linalg::SparseMatrix;
using linalg::Vector;

/// A 3×5 plan with positive and zero entries (zeros exercise the CSR
/// backing's implicit-zero handling).
Matrix SamplePlanMatrix() {
  Matrix m(3, 5, 0.0);
  m(0, 0) = 0.30;
  m(0, 2) = 0.10;
  m(1, 1) = 0.05;
  m(1, 3) = 0.25;
  m(1, 4) = 0.05;
  m(2, 2) = 0.25;
  return m;
}

struct PlanPair {
  ot::TransportPlan dense;
  ot::TransportPlan sparse;
};

PlanPair MakePair(const Matrix& m) {
  const prob::Domain dom = prob::Domain::FromCardinalities({5});
  const std::vector<size_t> rows{0, 2, 4};
  const std::vector<size_t> cols{0, 1, 2, 3, 4};
  return {ot::TransportPlan(dom, rows, cols, m),
          ot::TransportPlan(dom, rows, cols, SparseMatrix::FromDense(m))};
}

TEST(PlanStorageTest, BackingIsReported) {
  const PlanPair pair = MakePair(SamplePlanMatrix());
  EXPECT_FALSE(pair.dense.IsSparse());
  EXPECT_TRUE(pair.sparse.IsSparse());
  EXPECT_EQ(pair.dense.Nnz(), 15u);   // rows×cols for dense storage
  EXPECT_EQ(pair.sparse.Nnz(), 6u);   // stored nonzeros
  // Footprint follows the backing store (CSR wins once zeros dominate; at
  // this toy size the row pointers still outweigh the saved zeros).
  EXPECT_EQ(pair.dense.MemoryBytes(), 15u * sizeof(double));
  EXPECT_EQ(pair.sparse.MemoryBytes(),
            6u * (sizeof(double) + sizeof(size_t)) + 4u * sizeof(size_t));
  EXPECT_TRUE(pair.sparse.Densify().ApproxEquals(pair.dense.Densify(), 0.0));
}

TEST(PlanStorageTest, MarginalsAgreeBitForBit) {
  const PlanPair pair = MakePair(SamplePlanMatrix());
  const Vector src_d = pair.dense.SourceMarginal();
  const Vector src_s = pair.sparse.SourceMarginal();
  const Vector tgt_d = pair.dense.TargetMarginal();
  const Vector tgt_s = pair.sparse.TargetMarginal();
  ASSERT_EQ(src_s.size(), src_d.size());
  ASSERT_EQ(tgt_s.size(), tgt_d.size());
  for (size_t i = 0; i < src_d.size(); ++i) EXPECT_EQ(src_s[i], src_d[i]);
  for (size_t j = 0; j < tgt_d.size(); ++j) EXPECT_EQ(tgt_s[j], tgt_d[j]);
}

TEST(PlanStorageTest, ConditionalRowAgreesBitForBit) {
  const PlanPair pair = MakePair(SamplePlanMatrix());
  for (size_t r = 0; r < 3; ++r) {
    const Vector cd = pair.dense.ConditionalRow(r);
    const Vector cs = pair.sparse.ConditionalRow(r);
    ASSERT_EQ(cs.size(), cd.size());
    for (size_t j = 0; j < cd.size(); ++j) EXPECT_EQ(cs[j], cd[j]);
  }
}

TEST(PlanStorageTest, MapRepairAgrees) {
  const PlanPair pair = MakePair(SamplePlanMatrix());
  for (size_t cell = 0; cell < 5; ++cell) {
    EXPECT_EQ(pair.sparse.MapRepair(cell), pair.dense.MapRepair(cell));
  }
}

TEST(PlanStorageTest, SampleRepairSharesTheRngStream) {
  // Identical entries => identical draws and identical repairs, so the two
  // backings advance a shared RNG stream in lockstep.
  const PlanPair pair = MakePair(SamplePlanMatrix());
  Rng rng_d(123), rng_s(123);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t cell = static_cast<size_t>(trial % 5);
    EXPECT_EQ(pair.sparse.SampleRepair(cell, rng_s),
              pair.dense.SampleRepair(cell, rng_d));
  }
  // Streams stayed in sync throughout.
  EXPECT_EQ(rng_s.NextUint64(), rng_d.NextUint64());
}

TEST(PlanStorageTest, MasslessAndUnknownRowsAreIdentityOnBothBackings) {
  Matrix m = SamplePlanMatrix();
  for (size_t j = 0; j < 5; ++j) m(2, j) = 0.0;  // row 2 loses all mass
  const PlanPair pair = MakePair(m);
  Rng rng(5);
  EXPECT_EQ(pair.sparse.SampleRepair(4, rng), 4u);  // massless row
  EXPECT_EQ(pair.sparse.MapRepair(4), 4u);
  EXPECT_EQ(pair.sparse.SampleRepair(3, rng), 3u);  // not in row support
  EXPECT_EQ(pair.sparse.MapRepair(3), 3u);
}

// -------------------------------------------- solver-to-repair pipeline --

TEST(PlanStorageTest, CutoffZeroSolvesAgreeAcrossBackings) {
  Rng rng(17);
  Matrix cost(8, 8);
  for (double& v : cost.data()) v = rng.NextDouble() * 2.0;
  Vector p(8), q(8);
  for (size_t i = 0; i < 8; ++i) {
    p[i] = 0.1 + rng.NextDouble();
    q[i] = 0.1 + rng.NextDouble();
  }
  p.Normalize();
  q.Normalize();
  ot::SinkhornOptions opts;
  opts.epsilon = 0.15;
  opts.num_threads = 1;
  const auto dense = ot::RunSinkhorn(cost, p, q, opts).value();
  const auto sparse = ot::RunSinkhornSparse(cost, p, q, opts, 0.0).value();

  const prob::Domain dom = prob::Domain::FromCardinalities({8});
  std::vector<size_t> cells(8);
  for (size_t i = 0; i < 8; ++i) cells[i] = i;
  const ot::TransportPlan dense_plan(dom, cells, cells, dense.plan);
  const ot::TransportPlan sparse_plan(dom, cells, cells, sparse.plan);
  ASSERT_TRUE(sparse_plan.IsSparse());

  Rng rng_d(99), rng_s(99);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t cell = static_cast<size_t>(trial % 8);
    EXPECT_EQ(sparse_plan.SampleRepair(cell, rng_s),
              dense_plan.SampleRepair(cell, rng_d));
    EXPECT_EQ(sparse_plan.MapRepair(cell), dense_plan.MapRepair(cell));
  }
}

TEST(PlanStorageTest, TruncatedFastOtCleanKeepsThePlanSparse) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 1200;
  gen.num_z_attrs = 1;
  gen.z_card = 3;
  gen.violation = 0.6;
  gen.seed = 11;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  const auto u_cols = ci.ResolveColumns(table.schema()).value();
  const auto p = table.Empirical(u_cols);
  const auto spec = ci.SpecInProjectedDomain();
  ot::EuclideanCost cost(u_cols.size());

  core::FastOtCleanOptions opts;
  opts.epsilon = 0.1;
  opts.max_outer_iterations = 60;
  opts.kernel_truncation = 1e-8;

  Rng rng(12);
  const auto r = core::FastOtClean(p, spec, cost, opts, rng).value();
  // The acceptance criterion: with truncation on, the plan is CSR-backed
  // end to end and holds exactly the truncated kernel's support — never a
  // dense rows×cols matrix.
  EXPECT_TRUE(r.plan.IsSparse());
  EXPECT_EQ(r.plan.Nnz(), r.kernel_nnz);
  EXPECT_LT(r.plan.Nnz(),
            r.plan.row_cells().size() * r.plan.col_cells().size());
  // And it still repairs: sampling stays inside the column support.
  Rng sample_rng(3);
  const size_t repaired = r.plan.SampleRepair(r.plan.row_cells()[0],
                                              sample_rng);
  EXPECT_LT(repaired, r.plan.domain().TotalSize());
}

TEST(PlanStorageTest, RepairTableReportsSparsePlanStorage) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 1000;
  gen.num_z_attrs = 1;
  gen.z_card = 3;
  gen.violation = 0.6;
  gen.seed = 21;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  // Unweighted Euclidean over (x, y, z0): the truncation below keeps every
  // x/y flip (the moves a CI repair needs) and drops only far z moves.
  ot::EuclideanCost cost(3);

  core::RepairOptions options;
  options.fast.epsilon = 0.1;
  options.fast.max_outer_iterations = 60;
  options.fast.kernel_truncation = 1e-8;
  const auto report = core::RepairTable(table, ci, options, &cost).value();
  EXPECT_TRUE(report.plan_sparse);
  EXPECT_GT(report.plan_nnz, 0u);
  EXPECT_EQ(report.plan_nnz, report.kernel_nnz);
  EXPECT_LT(report.final_cmi, report.initial_cmi * 0.5);

  core::RepairOptions dense_options = options;
  dense_options.fast.kernel_truncation = 0.0;
  const auto dense_report =
      core::RepairTable(table, ci, dense_options, &cost).value();
  EXPECT_FALSE(dense_report.plan_sparse);
  EXPECT_GT(dense_report.plan_nnz, report.plan_nnz);
}

// ------------------------------------------------ truncation guard rails --

TEST(PlanStorageTest, SparseSinkhornAcceptsLogDomain) {
  // Once rejected outright, the truncated path now iterates a
  // SparseLogTransportKernel; at cutoff 0 the log-domain sparse plan must
  // match the linear-domain dense one.
  Matrix cost(2, 2, 0.0);
  cost(0, 1) = 1.0;
  cost(1, 0) = 1.0;
  const Vector p(std::vector<double>{0.6, 0.4});
  const Vector q(std::vector<double>{0.3, 0.7});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.log_domain = true;
  const auto r = ot::RunSinkhornSparse(cost, p, q, opts, 0.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ot::SinkhornOptions lin = opts;
  lin.log_domain = false;
  const auto d = ot::RunSinkhorn(cost, p, q, lin).value();
  EXPECT_TRUE(r->plan.ToDense().ApproxEquals(d.plan, 1e-8));
  EXPECT_NEAR(r->transport_cost, d.transport_cost, 1e-8);
}

TEST(PlanStorageTest, SparseSinkhornRejectsStrandedRowMass) {
  // Row 1 is far from every target: with this cutoff all its kernel
  // entries vanish, so its source mass could never be transported.
  Matrix cost(2, 2, 0.0);
  cost(1, 0) = 10.0;
  cost(1, 1) = 10.0;
  const Vector p(std::vector<double>{0.5, 0.5});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.5;  // exp(-10/0.5) = e^-20 << cutoff
  const auto r = ot::RunSinkhornSparse(cost, p, p, opts, 1e-6);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("row 1"), std::string::npos);
}

TEST(PlanStorageTest, SparseSinkhornRejectsStrandedColumnMass) {
  Matrix cost(2, 2, 0.0);
  cost(0, 1) = 10.0;
  cost(1, 1) = 10.0;
  const Vector p(std::vector<double>{0.5, 0.5});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.5;
  const auto r = ot::RunSinkhornSparse(cost, p, p, opts, 1e-6);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("column 1"), std::string::npos);
}

TEST(PlanStorageTest, RelaxedModeToleratesEmptyColumns) {
  // Relaxed OT only soft-matches the target marginal, so an unreachable
  // column is legitimately under-served rather than an error (the policy
  // FastOtClean relies on); stranded *source* mass still fails.
  Matrix cost(2, 2, 0.0);
  cost(0, 1) = 10.0;
  cost(1, 1) = 10.0;
  const Vector p(std::vector<double>{0.5, 0.5});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.5;
  opts.relaxed = true;
  const auto r = ot::RunSinkhornSparse(cost, p, p, opts, 1e-6);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->plan.ToDense().ColSums()[1], 0.0);

  Matrix row_cost(2, 2, 0.0);
  row_cost(1, 0) = 10.0;
  row_cost(1, 1) = 10.0;
  EXPECT_FALSE(ot::RunSinkhornSparse(row_cost, p, p, opts, 1e-6).ok());
}

TEST(PlanStorageTest, FastOtCleanRejectsTruncationThatStrandsSourceMass) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 300;
  gen.num_z_attrs = 1;
  gen.z_card = 2;
  gen.violation = 0.4;
  gen.seed = 31;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  const auto u_cols = ci.ResolveColumns(table.schema()).value();
  const auto p = table.Empirical(u_cols);
  const auto spec = ci.SpecInProjectedDomain();
  ot::EuclideanCost cost(u_cols.size());

  core::FastOtCleanOptions opts;
  // Kernel entries are e^{-c/eps} <= 1, so a cutoff above 1 empties every
  // row — the degenerate limit of an over-aggressive truncation.
  opts.kernel_truncation = 1.5;
  Rng rng(32);
  const auto r = core::FastOtClean(p, spec, cost, opts, rng);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("stranded"), std::string::npos);
}

}  // namespace
}  // namespace otclean
