#include <gtest/gtest.h>

#include <cmath>

#include "core/diagnostics.h"
#include "core/repair.h"
#include "dataset/numeric.h"
#include "datagen/synthetic.h"

namespace otclean {
namespace {

using dataset::NumericBridge;
using dataset::NumericColumn;

std::vector<NumericColumn> MakeNumeric(size_t n, uint64_t seed) {
  Rng rng(seed);
  NumericColumn a{"a", {}};
  NumericColumn b{"b", {}};
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    a.values.push_back(x);
    b.values.push_back(0.8 * x + 0.3 * rng.NextGaussian());
  }
  return {a, b};
}

// --------------------------------------------------------- NumericBridge --

TEST(NumericBridgeTest, EncodeProducesBinCodes) {
  const auto cols = MakeNumeric(500, 1);
  NumericBridge bridge;
  ASSERT_TRUE(bridge.Fit(cols).ok());
  const auto table = bridge.Encode(cols).value();
  EXPECT_EQ(table.num_rows(), 500u);
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.schema().column(0).name, "a");
  // Quantile bins: roughly balanced occupancy.
  std::vector<int> counts(table.schema().column(0).cardinality(), 0);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    ++counts[static_cast<size_t>(table.Value(r, 0))];
  }
  for (int c : counts) EXPECT_GT(c, 50);
}

TEST(NumericBridgeTest, DecodeKeepsUnchangedValuesExactly) {
  const auto cols = MakeNumeric(300, 2);
  NumericBridge bridge;
  ASSERT_TRUE(bridge.Fit(cols).ok());
  const auto table = bridge.Encode(cols).value();
  Rng rng(3);
  const auto back = bridge.Decode(cols, table, rng).value();
  for (size_t c = 0; c < cols.size(); ++c) {
    for (size_t r = 0; r < cols[c].values.size(); ++r) {
      EXPECT_DOUBLE_EQ(back[c].values[r], cols[c].values[r]);
    }
  }
}

TEST(NumericBridgeTest, DecodeSamplesWithinRepairedBin) {
  const auto cols = MakeNumeric(300, 4);
  NumericBridge::Options opts;
  opts.bins = 4;
  NumericBridge bridge(opts);
  ASSERT_TRUE(bridge.Fit(cols).ok());
  auto table = bridge.Encode(cols).value();
  // Move row 0, column 0 into a different bin.
  const int old_code = table.Value(0, 0);
  const int new_code = (old_code + 2) % 4;
  table.SetValue(0, 0, new_code);
  Rng rng(5);
  const auto back = bridge.Decode(cols, table, rng).value();
  const double v = back[0].values[0];
  EXPECT_NE(v, cols[0].values[0]);
  // Re-encoding the sampled value recovers the repaired bin.
  const auto re = bridge.Encode(back).value();
  EXPECT_EQ(re.Value(0, 0), new_code);
  (void)v;
}

TEST(NumericBridgeTest, MissingAndValidation) {
  auto cols = MakeNumeric(50, 6);
  cols[0].values[7] = std::nan("");
  NumericBridge bridge;
  ASSERT_TRUE(bridge.Fit(cols).ok());
  const auto table = bridge.Encode(cols).value();
  EXPECT_TRUE(table.IsMissing(7, 0));

  NumericBridge unfitted;
  EXPECT_FALSE(unfitted.Encode(cols).ok());
  EXPECT_FALSE(NumericBridge().Fit({}).ok());
}

TEST(NumericBridgeTest, EndToEndNumericRepairPipeline) {
  // Numeric data with a planted discrete-level violation after binning:
  // b copies the sign of a; c is independent.
  Rng rng(7);
  NumericColumn a{"a", {}}, b{"b", {}}, c{"c", {}};
  for (size_t i = 0; i < 1200; ++i) {
    const double x = rng.NextGaussian();
    a.values.push_back(x);
    b.values.push_back((x > 0 ? 1.0 : -1.0) + 0.2 * rng.NextGaussian());
    c.values.push_back(rng.NextGaussian());
  }
  std::vector<NumericColumn> cols = {a, b, c};
  NumericBridge::Options opts;
  opts.bins = 3;
  NumericBridge bridge(opts);
  ASSERT_TRUE(bridge.Fit(cols).ok());
  const auto table = bridge.Encode(cols).value();

  const core::CiConstraint ci({"a"}, {"b"}, {"c"});
  const auto report = core::RepairTable(table, ci).value();
  EXPECT_LT(report.final_cmi, report.initial_cmi * 0.5);

  Rng decode_rng(8);
  const auto repaired_numeric =
      bridge.Decode(cols, report.repaired, decode_rng).value();
  // Re-encoding the repaired numeric data reproduces the repaired bins.
  const auto re = bridge.Encode(repaired_numeric).value();
  size_t mismatches = 0;
  for (size_t r = 0; r < re.num_rows(); ++r) {
    for (size_t col = 0; col < re.num_columns(); ++col) {
      if (re.Value(r, col) != report.repaired.Value(r, col)) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

// ----------------------------------------------------------- Diagnostics --

TEST(DiagnosticsTest, IdenticalTablesShowNoChanges) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 400;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  const auto diag = core::DiagnoseRepair(table, table, ci).value();
  EXPECT_EQ(diag.changed_rows, 0u);
  EXPECT_NEAR(diag.constraint_tv, 0.0, 1e-12);
  EXPECT_NEAR(diag.cmi_before, diag.cmi_after, 1e-12);
}

TEST(DiagnosticsTest, ReportsRepairEffect) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 1000;
  gen.violation = 0.7;
  gen.seed = 9;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  const auto report = core::RepairTable(table, ci).value();
  const auto diag =
      core::DiagnoseRepair(table, report.repaired, ci).value();
  EXPECT_GT(diag.changed_rows, 0u);
  EXPECT_LT(diag.cmi_after, diag.cmi_before);
  EXPECT_GT(diag.constraint_tv, 0.0);
  // The fairness-style cost isn't used here, so y (and possibly x) moves;
  // per-attribute bookkeeping must add up.
  size_t total_cells = 0;
  for (const auto& attr : diag.attributes) total_cells += attr.changed_cells;
  EXPECT_GT(total_cells, 0u);

  const std::string text = core::FormatDiagnostics(diag);
  EXPECT_NE(text.find("rows changed"), std::string::npos);
  EXPECT_NE(text.find("constraint CMI"), std::string::npos);
}

TEST(DiagnosticsTest, RejectsShapeMismatch) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 100;
  const auto a = datagen::MakeScalingDataset(gen).value();
  gen.num_rows = 50;
  const auto b = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  EXPECT_FALSE(core::DiagnoseRepair(a, b, ci).ok());
}

}  // namespace
}  // namespace otclean
