#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace otclean::linalg {
namespace {

TEST(VectorTest, ConstructionAndFill) {
  Vector v(4, 2.5);
  EXPECT_EQ(v.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 2.5);
  EXPECT_TRUE(Vector().empty());
}

TEST(VectorTest, OnesZeros) {
  EXPECT_DOUBLE_EQ(Vector::Ones(5).Sum(), 5.0);
  EXPECT_DOUBLE_EQ(Vector::Zeros(5).Sum(), 0.0);
}

TEST(VectorTest, SumDotNorms) {
  Vector a(std::vector<double>{1.0, 2.0, 3.0});
  Vector b(std::vector<double>{4.0, -5.0, 6.0});
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(a.Norm2(), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(b.NormInf(), 6.0);
}

TEST(VectorTest, MinMaxArgMax) {
  Vector v(std::vector<double>{3.0, 9.0, -1.0});
  EXPECT_DOUBLE_EQ(v.Max(), 9.0);
  EXPECT_DOUBLE_EQ(v.Min(), -1.0);
  EXPECT_EQ(v.ArgMax(), 1u);
}

TEST(VectorTest, ArithmeticOperators) {
  Vector a(std::vector<double>{1.0, 2.0});
  Vector b(std::vector<double>{3.0, 4.0});
  Vector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
  Vector d = b - a;
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  Vector e = a * 2.0;
  EXPECT_DOUBLE_EQ(e[1], 4.0);
  e /= 2.0;
  EXPECT_DOUBLE_EQ(e[1], 2.0);
}

TEST(VectorTest, CwiseProductAndSafeQuotient) {
  Vector a(std::vector<double>{2.0, 0.0, 6.0});
  Vector b(std::vector<double>{4.0, 0.0, 0.0});
  Vector prod = a.CwiseProduct(b);
  EXPECT_DOUBLE_EQ(prod[0], 8.0);
  Vector q = a.CwiseQuotientSafe(b);
  EXPECT_DOUBLE_EQ(q[0], 0.5);
  EXPECT_DOUBLE_EQ(q[1], 0.0);  // 0/0 := 0
  EXPECT_DOUBLE_EQ(q[2], 0.0);  // x/0 := 0
}

TEST(VectorTest, CwisePowPreservesZeros) {
  Vector a(std::vector<double>{4.0, 0.0, 9.0});
  Vector p = a.CwisePow(0.5);
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
}

TEST(VectorTest, CwiseExpAndLogSafe) {
  Vector a(std::vector<double>{0.0, 1.0});
  Vector e = a.CwiseExp();
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_NEAR(e[1], M_E, 1e-12);
  Vector l = e.CwiseLogSafe();
  EXPECT_NEAR(l[1], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Vector(std::vector<double>{0.0}).CwiseLogSafe()[0], 0.0);
}

TEST(VectorTest, NormalizeMakesProbabilityVector) {
  Vector v(std::vector<double>{1.0, 3.0});
  v.Normalize();
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  Vector z(std::vector<double>{0.0, 0.0});
  z.Normalize();  // no-op, no NaN
  EXPECT_DOUBLE_EQ(z.Sum(), 0.0);
}

TEST(VectorTest, ApproxEquals) {
  Vector a(std::vector<double>{1.0, 2.0});
  Vector b(std::vector<double>{1.0, 2.0 + 1e-12});
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-15));
  EXPECT_FALSE(a.ApproxEquals(Vector(3), 1.0));
}

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 5.0 + 7.0);
}

TEST(MatrixTest, IdentityAndOuterProduct) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(eye.Sum(), 3.0);

  Vector w(std::vector<double>{1.0, 2.0});
  Vector h(std::vector<double>{3.0, 4.0, 5.0});
  Matrix o = Matrix::OuterProduct(w, h);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(o(0, 0), 3.0);
}

TEST(MatrixTest, RowColExtraction) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.Row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(m.Col(1)[0], 2.0);
}

TEST(MatrixTest, MatVecAndTranspose) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6]
  for (size_t r = 0, k = 1; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c, ++k) m(r, c) = static_cast<double>(k);
  }
  Vector x(std::vector<double>{1.0, 0.0, -1.0});
  Vector y = m.MatVec(x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  Vector z(std::vector<double>{1.0, 1.0});
  Vector t = m.TransposeMatVec(z);
  EXPECT_DOUBLE_EQ(t[0], 5.0);
  EXPECT_DOUBLE_EQ(t[1], 7.0);
  EXPECT_DOUBLE_EQ(t[2], 9.0);

  Matrix mt = m.Transposed();
  EXPECT_EQ(mt.rows(), 3u);
  EXPECT_DOUBLE_EQ(mt(2, 1), 6.0);
}

TEST(MatrixTest, RowColSums) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.RowSums()[0], 3.0);
  EXPECT_DOUBLE_EQ(m.RowSums()[1], 7.0);
  EXPECT_DOUBLE_EQ(m.ColSums()[0], 4.0);
  EXPECT_DOUBLE_EQ(m.ColSums()[1], 6.0);
}

TEST(MatrixTest, ScaleRowsColsMatchesDiagonalScaling) {
  Matrix k(2, 2, 1.0);
  Vector u(std::vector<double>{2.0, 3.0});
  Vector v(std::vector<double>{5.0, 7.0});
  Matrix s = k.ScaleRowsCols(u, v);
  EXPECT_DOUBLE_EQ(s(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 21.0);
}

TEST(MatrixTest, GibbsKernel) {
  Matrix c(1, 2);
  c(0, 0) = 0.0;
  c(0, 1) = 1.0;
  Matrix k = c.GibbsKernel(0.5);
  EXPECT_DOUBLE_EQ(k(0, 0), 1.0);
  EXPECT_NEAR(k(0, 1), std::exp(-2.0), 1e-12);
}

TEST(MatrixTest, FrobeniusDot) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 3.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusDot(b), 12.0);
}

TEST(MatrixTest, ArithmeticAndApproxEquals) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 4.0);
  EXPECT_TRUE(a.ApproxEquals(a, 0.0));
  EXPECT_FALSE(a.ApproxEquals(b, 0.5));
  EXPECT_FALSE(a.ApproxEquals(Matrix(2, 3), 100.0));
}

TEST(MatrixTest, CwiseProduct) {
  Matrix a(2, 2, 2.0);
  Matrix b(2, 2, 3.0);
  EXPECT_DOUBLE_EQ(a.CwiseProduct(b)(1, 1), 6.0);
}

TEST(MatrixTest, NormInf) {
  Matrix a(2, 2);
  a(0, 1) = -9.0;
  EXPECT_DOUBLE_EQ(a.NormInf(), 9.0);
}

}  // namespace
}  // namespace otclean::linalg
