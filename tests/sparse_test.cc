#include <gtest/gtest.h>

#include <cmath>

#include "core/ci_constraint.h"
#include "core/fast_otclean.h"
#include "datagen/synthetic.h"
#include "linalg/sparse_matrix.h"
#include "ot/cost.h"
#include "ot/sinkhorn.h"

namespace otclean {
namespace {

using linalg::Matrix;
using linalg::SparseMatrix;
using linalg::Vector;

Matrix SmallDense() {
  Matrix m(2, 3, 0.0);
  m(0, 0) = 1.0;
  m(0, 2) = 2.0;
  m(1, 1) = 3.0;
  return m;
}

TEST(SparseMatrixTest, FromDenseKeepsNonzeros) {
  const SparseMatrix s = SparseMatrix::FromDense(SmallDense());
  EXPECT_EQ(s.nnz(), 3u);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 3u);
  EXPECT_TRUE(s.ToDense().ApproxEquals(SmallDense(), 0.0));
}

TEST(SparseMatrixTest, ThresholdDropsSmallEntries) {
  const SparseMatrix s = SparseMatrix::FromDense(SmallDense(), 1.5);
  EXPECT_EQ(s.nnz(), 2u);  // entries 2.0 and 3.0 survive
}

TEST(SparseMatrixTest, MatVecAgreesWithDense) {
  const Matrix d = SmallDense();
  const SparseMatrix s = SparseMatrix::FromDense(d);
  const Vector x(std::vector<double>{1.0, -2.0, 3.0});
  EXPECT_TRUE(s.MatVec(x).ApproxEquals(d.MatVec(x), 1e-12));
  const Vector y(std::vector<double>{2.0, -1.0});
  EXPECT_TRUE(s.TransposeMatVec(y).ApproxEquals(d.TransposeMatVec(y), 1e-12));
}

TEST(SparseMatrixTest, RowColSumsAgree) {
  const Matrix d = SmallDense();
  const SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_TRUE(s.RowSums().ApproxEquals(d.RowSums(), 1e-12));
  EXPECT_TRUE(s.ColSums().ApproxEquals(d.ColSums(), 1e-12));
}

TEST(SparseMatrixTest, ScaleRowsColsAgrees) {
  const Matrix d = SmallDense();
  const SparseMatrix s = SparseMatrix::FromDense(d);
  const Vector u(std::vector<double>{2.0, 3.0});
  const Vector v(std::vector<double>{1.0, 4.0, 0.5});
  EXPECT_TRUE(
      s.ScaleRowsCols(u, v).ToDense().ApproxEquals(d.ScaleRowsCols(u, v),
                                                   1e-12));
}

TEST(SparseMatrixTest, GibbsKernelMatchesDenseAboveCutoff) {
  Matrix cost(2, 2);
  cost(0, 1) = 1.0;
  cost(1, 0) = 10.0;
  const double eps = 0.5;
  const SparseMatrix k = SparseMatrix::GibbsKernel(cost, eps, 1e-6);
  // exp(-10/0.5) = e^-20 ~ 2e-9 < cutoff -> dropped.
  EXPECT_EQ(k.nnz(), 3u);
  EXPECT_NEAR(k.ToDense()(0, 1), std::exp(-2.0), 1e-12);
}

TEST(SparseMatrixTest, FrobeniusDotDense) {
  const Matrix d = SmallDense();
  const SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_NEAR(s.FrobeniusDotDense(d), 1.0 + 4.0 + 9.0, 1e-12);
}

TEST(SparseMatrixTest, MemoryScalesWithNnz) {
  const SparseMatrix dense_ish =
      SparseMatrix::FromDense(Matrix(50, 50, 1.0));
  const SparseMatrix sparse_ish = SparseMatrix::FromDense(Matrix(50, 50, 0.0));
  EXPECT_GT(dense_ish.MemoryBytes(), 10 * sparse_ish.MemoryBytes());
}

// ------------------------------------------------------- Sparse Sinkhorn --

TEST(SparseSinkhornTest, NoTruncationMatchesDense) {
  Matrix cost(2, 2);
  cost(0, 1) = 1.0;
  cost(1, 0) = 1.0;
  const Vector p(std::vector<double>{0.7, 0.3});
  const Vector q(std::vector<double>{0.4, 0.6});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.05;
  const auto dense = ot::RunSinkhorn(cost, p, q, opts).value();
  const auto sparse = ot::RunSinkhornSparse(cost, p, q, opts, 0.0).value();
  EXPECT_TRUE(sparse.plan.ToDense().ApproxEquals(dense.plan, 1e-9));
  EXPECT_NEAR(sparse.transport_cost, dense.transport_cost, 1e-9);
}

TEST(SparseSinkhornTest, TruncationShrinksKernel) {
  Rng rng(1);
  Matrix cost(10, 10);
  for (double& v : cost.data()) v = rng.NextDouble() * 4.0;
  Vector p(10), q(10);
  for (size_t i = 0; i < 10; ++i) {
    p[i] = 0.1 + rng.NextDouble();
    q[i] = 0.1 + rng.NextDouble();
  }
  p.Normalize();
  q.Normalize();
  ot::SinkhornOptions opts;
  opts.epsilon = 0.2;
  const auto full = ot::RunSinkhornSparse(cost, p, q, opts, 0.0).value();
  const auto cut = ot::RunSinkhornSparse(cost, p, q, opts, 1e-4).value();
  EXPECT_LT(cut.plan.nnz(), full.plan.nnz());
  // The truncated plan still transports nearly all mass at similar cost.
  EXPECT_GT(cut.plan.ToDense().Sum(), 0.98);
  EXPECT_NEAR(cut.transport_cost, full.transport_cost, 0.05);
}

TEST(SparseSinkhornTest, RejectsBadInput) {
  Matrix cost(2, 2, 0.0);
  Vector p(std::vector<double>{0.5, 0.5});
  ot::SinkhornOptions opts;
  EXPECT_FALSE(
      ot::RunSinkhornSparse(cost, p, Vector(3), opts, 0.0).ok());
  EXPECT_FALSE(ot::RunSinkhornSparse(cost, p, p, opts, -1.0).ok());
}

// ---------------------------------------------- Sparse FastOTClean path ---

TEST(SparseFastOtCleanTest, TruncatedKernelStillRepairs) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 1200;
  gen.num_z_attrs = 1;
  gen.z_card = 3;
  gen.violation = 0.6;
  gen.seed = 11;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  const auto u_cols = ci.ResolveColumns(table.schema()).value();
  const auto p = table.Empirical(u_cols);
  const auto spec = ci.SpecInProjectedDomain();
  ot::EuclideanCost cost(u_cols.size());

  core::FastOtCleanOptions dense_opts;
  dense_opts.epsilon = 0.1;
  dense_opts.max_outer_iterations = 80;
  core::FastOtCleanOptions sparse_opts = dense_opts;
  sparse_opts.kernel_truncation = 1e-8;

  Rng r1(12), r2(12);
  const auto dense = core::FastOtClean(p, spec, cost, dense_opts, r1).value();
  const auto sparse =
      core::FastOtClean(p, spec, cost, sparse_opts, r2).value();
  EXPECT_LT(sparse.target_cmi, 1e-6);
  EXPECT_LT(sparse.kernel_nnz, dense.kernel_nnz);
  EXPECT_NEAR(sparse.transport_cost, dense.transport_cost, 0.05);
}

}  // namespace
}  // namespace otclean
