#include <gtest/gtest.h>

#include "cleaning/baran_style.h"
#include "cleaning/distortion.h"
#include "cleaning/gain_style.h"
#include "cleaning/hyperimpute_style.h"
#include "cleaning/imputer.h"
#include "cleaning/missingness.h"
#include "cleaning/noise.h"
#include "core/repair.h"
#include "datagen/datasets.h"
#include "datagen/synthetic.h"

namespace otclean::cleaning {
namespace {

dataset::Table MakeCarTable(size_t n = 1500, uint64_t seed = 3) {
  return datagen::MakeCar(n, seed)->table;
}

// ----------------------------------------------------------------- Noise --

TEST(NoiseTest, RateControlsCorruptionVolume) {
  const auto clean = MakeCarTable();
  AttributeNoiseOptions opts;
  opts.target_col = 2;  // doors
  opts.driver_col = 6;  // class
  opts.rate = 0.3;
  const auto dirty = InjectAttributeNoise(clean, opts).value();
  const auto diff = DiffRows(clean, dirty);
  EXPECT_NEAR(static_cast<double>(diff.size()) / clean.num_rows(), 0.25,
              0.07);  // some corruptions coincide with the old value
}

TEST(NoiseTest, ZeroRateIsIdentity) {
  const auto clean = MakeCarTable(300);
  AttributeNoiseOptions opts;
  opts.target_col = 2;
  opts.driver_col = 6;
  opts.rate = 0.0;
  const auto dirty = InjectAttributeNoise(clean, opts).value();
  EXPECT_TRUE(DiffRows(clean, dirty).empty());
}

TEST(NoiseTest, NoiseCreatesCiViolation) {
  const auto bundle = datagen::MakeCar(1728, 4).value();
  const double clean_cmi =
      core::TableCmi(bundle.table, bundle.constraint).value();
  AttributeNoiseOptions opts;
  opts.target_col = bundle.table.schema().ColumnIndex("doors").value();
  opts.driver_col = bundle.table.schema().ColumnIndex("class").value();
  opts.rate = 0.5;
  const auto dirty = InjectAttributeNoise(bundle.table, opts).value();
  const double dirty_cmi = core::TableCmi(dirty, bundle.constraint).value();
  EXPECT_GT(dirty_cmi, clean_cmi * 2.0);
}

TEST(NoiseTest, ValidatesOptions) {
  const auto t = MakeCarTable(50);
  AttributeNoiseOptions opts;
  opts.target_col = 99;
  EXPECT_FALSE(InjectAttributeNoise(t, opts).ok());
  opts.target_col = 1;
  opts.driver_col = 1;
  EXPECT_FALSE(InjectAttributeNoise(t, opts).ok());
  opts.driver_col = 0;
  opts.rate = 1.5;
  EXPECT_FALSE(InjectAttributeNoise(t, opts).ok());
}

// ----------------------------------------------------------- Missingness --

TEST(MissingnessTest, MarRateApproximatelyRespected) {
  const auto t = MakeCarTable();
  MissingnessOptions opts;
  opts.target_col = 2;
  opts.driver_col = 5;
  opts.mechanism = MissingMechanism::kMar;
  opts.rate = 0.3;
  const auto out = InjectMissingness(t, opts).value();
  const double frac =
      static_cast<double>(out.CountMissing()) / t.num_rows();
  EXPECT_NEAR(frac, 0.3, 0.08);
}

TEST(MissingnessTest, MarDependsOnDriver) {
  const auto t = MakeCarTable(3000);
  MissingnessOptions opts;
  opts.target_col = 2;
  opts.driver_col = 5;  // safety, card 3
  opts.mechanism = MissingMechanism::kMar;
  opts.rate = 0.4;
  const auto out = InjectMissingness(t, opts).value();
  double miss_high = 0, n_high = 0, miss_low = 0, n_low = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const bool high = t.Value(r, 5) * 2 >= 3;
    if (high) {
      ++n_high;
      miss_high += out.IsMissing(r, 2);
    } else {
      ++n_low;
      miss_low += out.IsMissing(r, 2);
    }
  }
  EXPECT_GT(miss_high / n_high, 2.0 * miss_low / n_low);
}

TEST(MissingnessTest, MnarDependsOnTargetValue) {
  const auto t = MakeCarTable(3000);
  MissingnessOptions opts;
  opts.target_col = 2;  // doors, card 4
  opts.driver_col = 6;
  opts.mechanism = MissingMechanism::kMnar;
  opts.rate = 0.4;
  const auto out = InjectMissingness(t, opts).value();
  double miss_high = 0, n_high = 0, miss_low = 0, n_low = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const bool high = t.Value(r, 2) * 2 >= 4;
    if (high) {
      ++n_high;
      miss_high += out.IsMissing(r, 2);
    } else {
      ++n_low;
      miss_low += out.IsMissing(r, 2);
    }
  }
  EXPECT_GT(miss_high / n_high, miss_low / n_low);
}

// -------------------------------------------------------------- Imputers --

dataset::Table WithMar(const dataset::Table& t, double rate, uint64_t seed) {
  MissingnessOptions opts;
  opts.target_col = 2;
  opts.driver_col = 5;
  opts.rate = rate;
  opts.seed = seed;
  return InjectMissingness(t, opts).value();
}

TEST(ImputerTest, MostFrequentFillsEverything) {
  const auto dirty = WithMar(MakeCarTable(), 0.4, 5);
  MostFrequentImputer imp;
  const auto filled = imp.Impute(dirty).value();
  EXPECT_FALSE(filled.HasMissing());
  EXPECT_EQ(filled.num_rows(), dirty.num_rows());
}

TEST(ImputerTest, MostFrequentUsesMode) {
  std::vector<dataset::Column> cols = {datagen::MakeColumn("a", 3)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  ASSERT_TRUE(t.AppendRow({1}).ok());
  ASSERT_TRUE(t.AppendRow({1}).ok());
  ASSERT_TRUE(t.AppendRow({2}).ok());
  ASSERT_TRUE(t.AppendRow({dataset::kMissing}).ok());
  MostFrequentImputer imp;
  const auto filled = imp.Impute(t).value();
  EXPECT_EQ(filled.Value(3, 0), 1);
}

TEST(ImputerTest, KnnFillsEverythingAndUsesNeighbors) {
  const auto dirty = WithMar(MakeCarTable(800), 0.3, 6);
  KnnImputer imp;
  const auto filled = imp.Impute(dirty).value();
  EXPECT_FALSE(filled.HasMissing());
}

TEST(ImputerTest, KnnRecoversFunctionalValue) {
  // Column b == column a; kNN should recover missing b from a-match.
  std::vector<dataset::Column> cols = {datagen::MakeColumn("a", 3),
                                       datagen::MakeColumn("b", 3)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    const int a = static_cast<int>(rng.NextUint64Below(3));
    ASSERT_TRUE(t.AppendRow({a, a}).ok());
  }
  t.SetValue(0, 1, dataset::kMissing);
  KnnImputer imp;
  const auto filled = imp.Impute(t).value();
  EXPECT_EQ(filled.Value(0, 1), t.Value(0, 0));
}

TEST(ImputerTest, GainStyleFillsAndFollowsDistribution) {
  const auto dirty = WithMar(MakeCarTable(1500), 0.4, 8);
  GainStyleImputer imp;
  const auto filled = imp.Impute(dirty).value();
  EXPECT_FALSE(filled.HasMissing());
}

TEST(ImputerTest, GainStyleSamplesConditionally) {
  // b strongly determined by a; sampled imputations should track it.
  std::vector<dataset::Column> cols = {datagen::MakeColumn("a", 2),
                                       datagen::MakeColumn("b", 2)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  Rng rng(9);
  for (int i = 0; i < 400; ++i) {
    const int a = rng.NextBernoulli(0.5) ? 1 : 0;
    const int b = rng.NextBernoulli(0.9) ? a : 1 - a;
    ASSERT_TRUE(t.AppendRow({a, b}).ok());
  }
  // Blank half of b.
  for (int i = 0; i < 200; ++i) t.SetValue(i, 1, dataset::kMissing);
  GainStyleImputer imp;
  const auto filled = imp.Impute(t).value();
  size_t match = 0;
  for (int i = 0; i < 200; ++i) {
    if (filled.Value(i, 1) == filled.Value(i, 0)) ++match;
  }
  EXPECT_GT(match, 130u);  // ~90% expected
}

TEST(ImputerTest, HyperImputeStyleFills) {
  const auto dirty = WithMar(MakeCarTable(1000), 0.4, 10);
  HyperImputeStyleImputer imp;
  const auto filled = imp.Impute(dirty).value();
  EXPECT_FALSE(filled.HasMissing());
}

TEST(ImputerTest, HyperImputeRecoversStructuredColumn) {
  std::vector<dataset::Column> cols = {datagen::MakeColumn("a", 3),
                                       datagen::MakeColumn("b", 3)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const int a = static_cast<int>(rng.NextUint64Below(3));
    ASSERT_TRUE(t.AppendRow({a, a}).ok());
  }
  for (int i = 0; i < 100; ++i) t.SetValue(i, 1, dataset::kMissing);
  HyperImputeStyleImputer imp;
  const auto filled = imp.Impute(t).value();
  size_t correct = 0;
  for (int i = 0; i < 100; ++i) {
    if (filled.Value(i, 1) == t.Value(i, 0)) ++correct;
  }
  EXPECT_GT(correct, 90u);
}

// ------------------------------------------------------------ BaranStyle --

TEST(BaranStyleTest, CorrectsConfidentErrors) {
  // b == a functionally in the clean sample.
  std::vector<dataset::Column> cols = {datagen::MakeColumn("a", 3),
                                       datagen::MakeColumn("b", 3)};
  dataset::Table clean{dataset::Schema(cols)};
  Rng rng(12);
  for (int i = 0; i < 400; ++i) {
    const int a = static_cast<int>(rng.NextUint64Below(3));
    ASSERT_TRUE(clean.AppendRow({a, a}).ok());
  }
  dataset::Table dirty = clean;
  // Corrupt b in the first 50 rows.
  for (int i = 0; i < 50; ++i) {
    dirty.SetValue(i, 1, (dirty.Value(i, 0) + 1) % 3);
  }
  BaranStyleCleaner cleaner;
  ASSERT_TRUE(cleaner.Fit(clean).ok());
  const auto fixed = cleaner.Clean(dirty).value();
  size_t corrected = 0;
  for (int i = 0; i < 50; ++i) {
    if (fixed.Value(i, 1) == clean.Value(i, 1)) ++corrected;
  }
  EXPECT_GT(corrected, 40u);
}

TEST(BaranStyleTest, LeavesCleanDataAlone) {
  const auto clean = MakeCarTable(500);
  BaranStyleCleaner cleaner;
  ASSERT_TRUE(cleaner.Fit(clean).ok());
  const auto out = cleaner.Clean(clean).value();
  const auto diff = DiffRows(clean, out);
  // High-precision: very few spurious "corrections" on clean data.
  EXPECT_LT(diff.size(), clean.num_rows() / 10);
}

TEST(BaranStyleTest, CleanBeforeFitFails) {
  BaranStyleCleaner cleaner;
  EXPECT_EQ(cleaner.Clean(MakeCarTable(10)).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------ Distortion --

TEST(DistortionTest, EmdZeroForIdenticalTables) {
  const auto t = MakeCarTable(300);
  const double emd = TableEmd(t, t, {0, 1, 2}).value();
  EXPECT_NEAR(emd, 0.0, 1e-9);
}

TEST(DistortionTest, EmdGrowsWithNoise) {
  const auto t = MakeCarTable(800);
  AttributeNoiseOptions opts;
  opts.target_col = 2;
  opts.driver_col = 6;
  opts.seed = 13;
  opts.rate = 0.2;
  const auto light = InjectAttributeNoise(t, opts).value();
  opts.rate = 0.8;
  const auto heavy = InjectAttributeNoise(t, opts).value();
  const std::vector<size_t> cols = {0, 2, 6};
  const double d_light = TableEmd(t, light, cols).value();
  const double d_heavy = TableEmd(t, heavy, cols).value();
  EXPECT_LT(d_light, d_heavy);
  EXPECT_GT(d_light, 0.0);
}

TEST(DistortionTest, BootstrapSampleSizeAndRange) {
  const auto t = MakeCarTable(200);
  Rng rng(14);
  const auto b = BootstrapSample(t, 150, rng);
  EXPECT_EQ(b.num_rows(), 150u);
  EXPECT_EQ(b.num_columns(), t.num_columns());
}

}  // namespace
}  // namespace otclean::cleaning
