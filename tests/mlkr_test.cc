#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "metric/mlkr.h"

namespace otclean::metric {
namespace {

/// Table where only feature 0 is predictive of the label; feature 1 is
/// pure noise.
dataset::Table MakeMetricTable(size_t n, uint64_t seed) {
  std::vector<dataset::Column> cols = {datagen::MakeColumn("signal", 4),
                                       datagen::MakeColumn("noise", 4),
                                       datagen::MakeColumn("label", 2)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int s = static_cast<int>(rng.NextUint64Below(4));
    const int z = static_cast<int>(rng.NextUint64Below(4));
    const int label = (s >= 2) ? 1 : 0;
    EXPECT_TRUE(t.AppendRow({s, z, label}).ok());
  }
  return t;
}

TEST(MlkrTest, LearningReducesLoss) {
  const auto t = MakeMetricTable(200, 1);
  const auto r = LearnMlkrWeights(t, 2, {0, 1}).value();
  EXPECT_LE(r.final_loss, r.initial_loss + 1e-9);
}

TEST(MlkrTest, PredictiveFeatureGetsLargerWeight) {
  const auto t = MakeMetricTable(220, 2);
  const auto r = LearnMlkrWeights(t, 2, {0, 1}).value();
  ASSERT_EQ(r.weights.size(), 2u);
  EXPECT_GT(r.weights[0], r.weights[1]);
}

TEST(MlkrTest, WeightsStayPositive) {
  const auto t = MakeMetricTable(150, 3);
  const auto r = LearnMlkrWeights(t, 2, {0, 1}).value();
  for (double w : r.weights) EXPECT_GT(w, 0.0);
}

TEST(MlkrTest, SubsamplesLargeTables) {
  const auto t = MakeMetricTable(3000, 4);
  MlkrOptions opts;
  opts.max_rows = 100;
  opts.epochs = 10;
  const auto r = LearnMlkrWeights(t, 2, {0, 1}, opts).value();
  EXPECT_EQ(r.weights.size(), 2u);
}

TEST(MlkrTest, RejectsDegenerateInputs) {
  const auto t = MakeMetricTable(100, 5);
  EXPECT_FALSE(LearnMlkrWeights(t, 2, {}).ok());         // no features
  EXPECT_FALSE(LearnMlkrWeights(t, 0, {1}).ok());        // non-binary label
  // Too few rows.
  const auto tiny = MakeMetricTable(2, 6);
  EXPECT_FALSE(LearnMlkrWeights(tiny, 2, {0, 1}).ok());
}

}  // namespace
}  // namespace otclean::metric
