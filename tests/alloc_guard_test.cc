// Allocation instrumentation for the cost-free sparse pipeline: a
// truncated (kernel_truncation > 0) FastOtClean solve must never perform a
// rows×cols-sized allocation — not for the plan (CSR end to end since the
// storage-polymorphic TransportPlan) and not for the cost (streamed
// through CostProvider since the O(nnz) pipeline). This test replaces
// global operator new to record the largest single allocation and the
// count of dense-scale (>= rows×cols doubles) allocations made while the
// solver runs, then asserts the truncated path stays strictly below that
// scale while the dense path — same problem, truncation 0 — is seen
// crossing it (proving the instrument actually measures).
//
// Kept in its own test binary so the global replacement cannot interfere
// with allocation-sensitive tests elsewhere.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/random.h"
#include "core/fast_otclean.h"
#include "core/solve_cache.h"
#include "prob/domain.h"
#include "prob/joint.h"

namespace {

std::atomic<bool> g_tracking{false};
std::atomic<size_t> g_max_alloc{0};
std::atomic<size_t> g_dense_scale_bytes{0};
std::atomic<size_t> g_dense_scale_allocs{0};

void Record(size_t size) {
  if (!g_tracking.load(std::memory_order_relaxed)) return;
  size_t prev = g_max_alloc.load(std::memory_order_relaxed);
  while (size > prev &&
         !g_max_alloc.compare_exchange_weak(prev, size,
                                            std::memory_order_relaxed)) {
  }
  const size_t threshold = g_dense_scale_bytes.load(std::memory_order_relaxed);
  if (threshold != 0 && size >= threshold) {
    g_dense_scale_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

struct TrackingScope {
  explicit TrackingScope(size_t dense_scale_bytes) {
    g_max_alloc.store(0, std::memory_order_relaxed);
    g_dense_scale_allocs.store(0, std::memory_order_relaxed);
    g_dense_scale_bytes.store(dense_scale_bytes, std::memory_order_relaxed);
    g_tracking.store(true, std::memory_order_relaxed);
  }
  ~TrackingScope() { g_tracking.store(false, std::memory_order_relaxed); }
  size_t max_alloc() const {
    return g_max_alloc.load(std::memory_order_relaxed);
  }
  size_t dense_scale_allocs() const {
    return g_dense_scale_allocs.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(size_t size) {
  Record(size);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace otclean::core {
namespace {

/// A domain big enough that rows×cols dwarfs every legitimate O(nnz) /
/// O(rows+cols) allocation: 4 attributes of cardinality 6 → 1296 cells;
/// ~200 active rows × 1296 columns ≈ 2.1 MB per dense plan/cost.
struct Problem {
  prob::Domain dom = prob::Domain::FromCardinalities({6, 6, 6, 6});
  prob::JointDistribution p_data{dom};
  prob::CiSpec ci{{0}, {1}, {2, 3}};
  ot::EuclideanCost cost{4};
  size_t active_rows = 0;

  explicit Problem(uint64_t seed) {
    Rng rng(seed);
    for (int draw = 0; draw < 400; ++draw) {
      p_data[static_cast<size_t>(rng.NextInt(
          0, static_cast<int64_t>(dom.TotalSize()) - 1))] += 1.0;
    }
    p_data.Normalize();
    for (size_t i = 0; i < p_data.size(); ++i) {
      if (p_data[i] > 0.0) ++active_rows;
    }
  }

  FastOtCleanOptions Options(double truncation,
                             bool log_domain = false) const {
    FastOtCleanOptions options;
    options.epsilon = 0.12;
    options.max_outer_iterations = 4;
    options.max_sinkhorn_iterations = 200;
    options.kernel_truncation = truncation;
    options.log_domain = log_domain;
    options.num_threads = 1;  // single-threaded: no pool allocations
    return options;
  }
};

TEST(AllocGuardTest, TruncatedSolveNeverAllocatesRowsTimesCols) {
  const Problem problem(2024);
  const size_t rows = problem.active_rows;
  const size_t cols = problem.dom.TotalSize();
  ASSERT_GT(rows, 100u);
  const size_t dense_bytes = rows * cols * sizeof(double);

  Rng rng(7);
  size_t kernel_nnz = 0;
  size_t max_alloc = 0;
  size_t dense_scale_allocs = 0;
  {
    TrackingScope scope(dense_bytes);
    const auto result = FastOtClean(problem.p_data, problem.ci, problem.cost,
                                    problem.Options(/*truncation=*/1e-3),
                                    rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->plan.IsSparse());
    kernel_nnz = result->kernel_nnz;
    max_alloc = scope.max_alloc();
    dense_scale_allocs = scope.dense_scale_allocs();
  }
  ASSERT_GT(kernel_nnz, 0u);
  ASSERT_LT(kernel_nnz, rows * cols);
  // THE acceptance assertion: zero allocations at dense rows×cols scale —
  // neither a plan nor a cost matrix — anywhere in the truncated solve.
  EXPECT_EQ(dense_scale_allocs, 0u);
  EXPECT_LT(max_alloc, dense_bytes);
  // And not merely squeaking under the threshold: the largest single
  // allocation (CSR arrays, tuple tables, domain-sized vectors) stays an
  // order of magnitude below the dense plan/cost scale.
  EXPECT_LT(max_alloc, dense_bytes / 8);
}

TEST(AllocGuardTest, TruncatedLogDomainSolveNeverAllocatesRowsTimesCols) {
  // Same guarantee on the log-domain path: the truncated solve iterates a
  // SparseLogTransportKernel holding −C/ε at the kept entries — no dense
  // log-kernel, no dense cost, no dense plan, ever.
  const Problem problem(2024);
  const size_t rows = problem.active_rows;
  const size_t cols = problem.dom.TotalSize();
  const size_t dense_bytes = rows * cols * sizeof(double);

  Rng rng(7);
  size_t kernel_nnz = 0;
  size_t max_alloc = 0;
  size_t dense_scale_allocs = 0;
  {
    TrackingScope scope(dense_bytes);
    const auto result = FastOtClean(
        problem.p_data, problem.ci, problem.cost,
        problem.Options(/*truncation=*/1e-3, /*log_domain=*/true), rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->plan.IsSparse());
    kernel_nnz = result->kernel_nnz;
    max_alloc = scope.max_alloc();
    dense_scale_allocs = scope.dense_scale_allocs();
  }
  ASSERT_GT(kernel_nnz, 0u);
  ASSERT_LT(kernel_nnz, rows * cols);
  EXPECT_EQ(dense_scale_allocs, 0u);
  EXPECT_LT(max_alloc, dense_bytes);
  EXPECT_LT(max_alloc, dense_bytes / 8);
}

TEST(AllocGuardTest, AnnealedTruncatedSolveNeverAllocatesRowsTimesCols) {
  // ε-annealing must inherit the O(nnz) guarantee: every stage kernel is
  // built at a LARGER ε than the final solve, where the same cutoff keeps
  // more entries — but still truncated, never materialized dense. A stage
  // that built a dense kernel "just to warm up" would defeat the memory
  // contract exactly on the large domains annealing targets.
  const Problem problem(2024);
  const size_t rows = problem.active_rows;
  const size_t cols = problem.dom.TotalSize();
  const size_t dense_bytes = rows * cols * sizeof(double);

  FastOtCleanOptions options = problem.Options(/*truncation=*/1e-3);
  options.epsilon_schedule.initial_epsilon = 0.3;
  options.epsilon_schedule.decay = 0.6;  // stages at ε = 0.3, 0.18
  options.epsilon_schedule.stage_max_iterations = 50;

  Rng rng(7);
  size_t kernel_nnz = 0;
  size_t max_alloc = 0;
  size_t dense_scale_allocs = 0;
  std::vector<ot::EpsilonAnnealStage> stages;
  {
    TrackingScope scope(dense_bytes);
    const auto result =
        FastOtClean(problem.p_data, problem.ci, problem.cost, options, rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->plan.IsSparse());
    kernel_nnz = result->kernel_nnz;
    stages = result->anneal_stages;
    max_alloc = scope.max_alloc();
    dense_scale_allocs = scope.dense_scale_allocs();
  }
  // The schedule actually ran (warm_start defaults on, no cache): two
  // stages ahead of the final ε = 0.12 solve.
  ASSERT_EQ(stages.size(), 2u);
  ASSERT_GT(kernel_nnz, 0u);
  ASSERT_LT(kernel_nnz, rows * cols);
  EXPECT_EQ(dense_scale_allocs, 0u);
  EXPECT_LT(max_alloc, dense_bytes / 8);
}

TEST(AllocGuardTest, CachedSolveSkipsKernelConstructionAllocations) {
  // The solve-cache acceptance assertion: a second, identical truncated
  // solve through a shared SolveCache adopts the cached kernel storages
  // (CSR arrays, CSC mirror, gathered support costs) instead of rebuilding
  // them, so its nnz-scale allocations collapse to plan materialization
  // alone — a handful of arrays — while the cold run is seen making
  // strictly more (kernel build + mirror + support costs + plan).
  const Problem problem(2024);
  SolveCache cache;
  // A milder cutoff than the tests above: it must keep enough entries that
  // nnz-scale dwarfs every O(cols) vector (cutoff 1e-8 keeps costs up to
  // ε·ln(1e8) ≈ 2.2, several neighbors per row), while still truncating.
  FastOtCleanOptions options = problem.Options(/*truncation=*/1e-8);
  options.solve_cache = &cache;

  // Probe run (untracked, cache-less) to learn the kernel's nnz — the
  // allocation scale the cached run must stay out of.
  size_t kernel_nnz = 0;
  {
    Rng rng(7);
    const auto probe = FastOtClean(problem.p_data, problem.ci, problem.cost,
                                   problem.Options(/*truncation=*/1e-8), rng);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    kernel_nnz = probe->kernel_nnz;
  }
  ASSERT_GT(kernel_nnz, problem.dom.TotalSize());  // dwarfs O(cols) vectors
  ASSERT_LT(kernel_nnz, problem.active_rows * problem.dom.TotalSize());
  const size_t nnz_bytes = kernel_nnz * sizeof(double);

  size_t cold_allocs = 0;
  {
    Rng rng(7);
    TrackingScope scope(nnz_bytes);
    const auto cold =
        FastOtClean(problem.p_data, problem.ci, problem.cost, options, rng);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(cold->cache_kernel_misses, 1u);
    cold_allocs = scope.dense_scale_allocs();
  }
  ASSERT_GT(cold_allocs, 0u);  // the instrument sees the kernel build

  size_t hot_allocs = 0;
  {
    Rng rng(7);
    TrackingScope scope(nnz_bytes);
    const auto hot =
        FastOtClean(problem.p_data, problem.ci, problem.cost, options, rng);
    ASSERT_TRUE(hot.ok()) << hot.status().ToString();
    EXPECT_EQ(hot->cache_kernel_hits, 1u);
    hot_allocs = scope.dense_scale_allocs();
  }
  // Zero kernel-construction allocations: what remains is the plan's own
  // CSR storage (values + column indices + a row-pointer array), nothing
  // growing with the kernel build.
  EXPECT_LT(hot_allocs, cold_allocs);
  EXPECT_LE(hot_allocs, 4u);
}

TEST(AllocGuardTest, DenseSolveTripsTheInstrument) {
  // Sanity check of the instrumentation itself: the dense path (truncation
  // 0) must be observed making rows×cols-scale allocations — otherwise the
  // zero-count above could pass vacuously.
  const Problem problem(2024);
  const size_t dense_bytes =
      problem.active_rows * problem.dom.TotalSize() * sizeof(double);

  Rng rng(7);
  TrackingScope scope(dense_bytes);
  const auto result = FastOtClean(problem.p_data, problem.ci, problem.cost,
                                  problem.Options(/*truncation=*/0.0), rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->plan.IsSparse());
  EXPECT_GT(scope.dense_scale_allocs(), 0u);
  EXPECT_GE(scope.max_alloc(), dense_bytes);
}

}  // namespace
}  // namespace otclean::core
