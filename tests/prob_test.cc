#include <gtest/gtest.h>

#include <cmath>

#include "prob/domain.h"
#include "prob/independence.h"
#include "prob/joint.h"

namespace otclean::prob {
namespace {

// ---------------------------------------------------------------- Domain --

TEST(DomainTest, MakeValidatesInputs) {
  EXPECT_FALSE(Domain::Make({"a"}, {2, 3}).ok());
  EXPECT_FALSE(Domain::Make({"a"}, {0}).ok());
  EXPECT_TRUE(Domain::Make({"a", "b"}, {2, 3}).ok());
}

TEST(DomainTest, TotalSizeIsProduct) {
  const Domain d = Domain::FromCardinalities({2, 3, 4});
  EXPECT_EQ(d.TotalSize(), 24u);
  EXPECT_EQ(d.num_attrs(), 3u);
  EXPECT_EQ(d.Cardinality(1), 3u);
}

TEST(DomainTest, EmptyDomainHasOneCell) {
  const Domain d = Domain::FromCardinalities({});
  EXPECT_EQ(d.TotalSize(), 1u);
  EXPECT_DOUBLE_EQ(d.AverageCardinality(), 0.0);
}

TEST(DomainTest, EncodeDecodeRoundTrip) {
  const Domain d = Domain::FromCardinalities({2, 3, 4});
  for (size_t i = 0; i < d.TotalSize(); ++i) {
    EXPECT_EQ(d.Encode(d.Decode(i)), i);
  }
}

TEST(DomainTest, LastAttributeVariesFastest) {
  const Domain d = Domain::FromCardinalities({2, 3});
  EXPECT_EQ(d.Encode({0, 0}), 0u);
  EXPECT_EQ(d.Encode({0, 1}), 1u);
  EXPECT_EQ(d.Encode({1, 0}), 3u);
}

TEST(DomainTest, DecodeAttrAgreesWithDecode) {
  const Domain d = Domain::FromCardinalities({3, 2, 5});
  for (size_t i = 0; i < d.TotalSize(); ++i) {
    const auto vals = d.Decode(i);
    for (size_t a = 0; a < d.num_attrs(); ++a) {
      EXPECT_EQ(d.DecodeAttr(i, a), vals[a]);
    }
  }
}

TEST(DomainTest, AttrIndexByName) {
  const auto d = Domain::Make({"x", "y"}, {2, 2}).value();
  EXPECT_EQ(d.AttrIndex("y").value(), 1u);
  EXPECT_FALSE(d.AttrIndex("z").ok());
}

TEST(DomainTest, ProjectPreservesNamesAndCards) {
  const auto d = Domain::Make({"x", "y", "z"}, {2, 3, 4}).value();
  const Domain p = d.Project({2, 0});
  EXPECT_EQ(p.num_attrs(), 2u);
  EXPECT_EQ(p.Name(0), "z");
  EXPECT_EQ(p.Cardinality(0), 4u);
  EXPECT_EQ(p.Name(1), "x");
}

TEST(DomainTest, ProjectIndexConsistentWithDecode) {
  const Domain d = Domain::FromCardinalities({2, 3, 4});
  const std::vector<size_t> attrs = {2, 0};
  const Domain p = d.Project(attrs);
  for (size_t i = 0; i < d.TotalSize(); ++i) {
    const auto vals = d.Decode(i);
    EXPECT_EQ(p.Decode(d.ProjectIndex(i, attrs)),
              (std::vector<int>{vals[2], vals[0]}));
  }
}

TEST(DomainTest, AverageCardinality) {
  const Domain d = Domain::FromCardinalities({2, 4});
  EXPECT_DOUBLE_EQ(d.AverageCardinality(), 3.0);
}

// --------------------------------------------------------------- Joint ---

TEST(JointTest, UniformSumsToOne) {
  const Domain d = Domain::FromCardinalities({3, 3});
  const auto u = JointDistribution::Uniform(d);
  EXPECT_NEAR(u.Mass(), 1.0, 1e-12);
  EXPECT_NEAR(u[0], 1.0 / 9.0, 1e-12);
}

TEST(JointTest, MakeRejectsWrongLength) {
  const Domain d = Domain::FromCardinalities({2, 2});
  EXPECT_FALSE(JointDistribution::Make(d, linalg::Vector(3)).ok());
  EXPECT_TRUE(JointDistribution::Make(d, linalg::Vector(4)).ok());
}

TEST(JointTest, FromCountsNormalizes) {
  const Domain d = Domain::FromCardinalities({2});
  const auto p = JointDistribution::FromCounts(d, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(JointTest, MarginalSumsCorrectly) {
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  p[d.Encode({0, 0})] = 0.1;
  p[d.Encode({0, 1})] = 0.2;
  p[d.Encode({1, 0})] = 0.3;
  p[d.Encode({1, 1})] = 0.4;
  const auto px = p.Marginal({0});
  EXPECT_NEAR(px[0], 0.3, 1e-12);
  EXPECT_NEAR(px[1], 0.7, 1e-12);
  const auto py = p.Marginal({1});
  EXPECT_NEAR(py[0], 0.4, 1e-12);
  EXPECT_NEAR(py[1], 0.6, 1e-12);
}

TEST(JointTest, MarginalOfAllAttrsIsIdentityUpToOrder) {
  const Domain d = Domain::FromCardinalities({2, 3});
  JointDistribution p = JointDistribution::Uniform(d);
  const auto m = p.Marginal({0, 1});
  EXPECT_TRUE(m.ApproxEquals(p, 1e-12));
}

TEST(JointTest, ConditionalOnSlicesNormalize) {
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  p[d.Encode({0, 0})] = 0.1;
  p[d.Encode({0, 1})] = 0.3;
  p[d.Encode({1, 0})] = 0.6;
  // Slice x=1,y=1 empty.
  const auto cond = p.ConditionalOn({0});
  EXPECT_NEAR(cond[d.Encode({0, 0})], 0.25, 1e-12);
  EXPECT_NEAR(cond[d.Encode({0, 1})], 0.75, 1e-12);
  EXPECT_NEAR(cond[d.Encode({1, 0})], 1.0, 1e-12);
  EXPECT_NEAR(cond[d.Encode({1, 1})], 0.0, 1e-12);
}

TEST(JointTest, EntropyUniformIsLogN) {
  const Domain d = Domain::FromCardinalities({4});
  EXPECT_NEAR(JointDistribution::Uniform(d).Entropy(), std::log(4.0), 1e-12);
}

TEST(JointTest, EntropyPointMassIsZero) {
  const Domain d = Domain::FromCardinalities({4});
  JointDistribution p(d);
  p[2] = 1.0;
  EXPECT_NEAR(p.Entropy(), 0.0, 1e-12);
}

TEST(JointTest, KlDivergenceProperties) {
  const Domain d = Domain::FromCardinalities({2});
  JointDistribution p(d), q(d);
  p[0] = 0.3;
  p[1] = 0.7;
  q[0] = 0.5;
  q[1] = 0.5;
  EXPECT_NEAR(p.KlDivergence(p), 0.0, 1e-12);
  EXPECT_GT(p.KlDivergence(q), 0.0);
  // Absolute continuity failure -> +inf.
  JointDistribution r(d);
  r[0] = 1.0;
  EXPECT_TRUE(std::isinf(p.KlDivergence(r)));
}

TEST(JointTest, TotalVariation) {
  const Domain d = Domain::FromCardinalities({2});
  JointDistribution p(d), q(d);
  p[0] = 1.0;
  q[1] = 1.0;
  EXPECT_NEAR(p.TotalVariation(q), 1.0, 1e-12);
  EXPECT_NEAR(p.TotalVariation(p), 0.0, 1e-12);
}

TEST(JointTest, SampleFollowsDistribution) {
  const Domain d = Domain::FromCardinalities({2});
  JointDistribution p(d);
  p[0] = 0.2;
  p[1] = 0.8;
  Rng rng(42);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += static_cast<int>(p.Sample(rng));
  EXPECT_NEAR(ones / static_cast<double>(n), 0.8, 0.02);
}

TEST(JointTest, ProductDistributionFactorizes) {
  const Domain dx = Domain::FromCardinalities({2});
  const Domain dy = Domain::FromCardinalities({3});
  JointDistribution p(dx), q(dy);
  p[0] = 0.4;
  p[1] = 0.6;
  q[0] = 0.2;
  q[1] = 0.3;
  q[2] = 0.5;
  const auto pq = ProductDistribution(p, q);
  EXPECT_EQ(pq.domain().TotalSize(), 6u);
  EXPECT_NEAR(pq[pq.domain().Encode({1, 2})], 0.3, 1e-12);
  EXPECT_NEAR(pq.Mass(), 1.0, 1e-12);
}

// --------------------------------------------------------- Independence --

/// Distribution over (X,Y,Z) binary where X ⟂ Y | Z holds exactly.
JointDistribution MakeCiConsistent() {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  JointDistribution p(d);
  // P(z): {0.4, 0.6}; P(x|z), P(y|z) chosen distinct per z.
  const double pz[2] = {0.4, 0.6};
  const double px[2] = {0.3, 0.7};
  const double py[2] = {0.8, 0.2};
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        const double fx = (x == 1) ? px[z] : 1.0 - px[z];
        const double fy = (y == 1) ? py[z] : 1.0 - py[z];
        p[d.Encode({x, y, z})] = pz[z] * fx * fy;
      }
    }
  }
  return p;
}

TEST(IndependenceTest, CmiZeroForConsistentDistribution) {
  const auto p = MakeCiConsistent();
  const CiSpec ci{{0}, {1}, {2}};
  EXPECT_NEAR(ConditionalMutualInformation(p, ci), 0.0, 1e-10);
  EXPECT_TRUE(SatisfiesCi(p, ci));
}

TEST(IndependenceTest, CmiPositiveForDependentDistribution) {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  JointDistribution p(d);
  // X = Y deterministically, independent of Z -> large CMI.
  p[d.Encode({0, 0, 0})] = 0.25;
  p[d.Encode({0, 0, 1})] = 0.25;
  p[d.Encode({1, 1, 0})] = 0.25;
  p[d.Encode({1, 1, 1})] = 0.25;
  const CiSpec ci{{0}, {1}, {2}};
  EXPECT_NEAR(ConditionalMutualInformation(p, ci), std::log(2.0), 1e-9);
  EXPECT_FALSE(SatisfiesCi(p, ci));
}

TEST(IndependenceTest, MarginalIndependenceEmptyZ) {
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution indep(d);
  indep[d.Encode({0, 0})] = 0.12;
  indep[d.Encode({0, 1})] = 0.28;
  indep[d.Encode({1, 0})] = 0.18;
  indep[d.Encode({1, 1})] = 0.42;  // P(x)P(y) with p=0.6,q=0.7
  const CiSpec ci{{0}, {1}, {}};
  EXPECT_NEAR(ConditionalMutualInformation(indep, ci), 0.0, 1e-10);
}

TEST(IndependenceTest, CmiMatchesExample32) {
  // D1 = {(0,0,1),(1,0,1),(0,1,1),(0,1,0)} violates Y ⟂ Z (Example 3.2).
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  std::vector<double> counts(8, 0.0);
  counts[d.Encode({0, 0, 1})] += 1;
  counts[d.Encode({1, 0, 1})] += 1;
  counts[d.Encode({0, 1, 1})] += 1;
  counts[d.Encode({0, 1, 0})] += 1;
  const auto p = JointDistribution::FromCounts(d, counts);
  const CiSpec ci{{1}, {2}, {}};  // Y ⟂ Z
  EXPECT_GT(ConditionalMutualInformation(p, ci), 1e-3);
}

TEST(IndependenceTest, CiProjectionSatisfiesConstraint) {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  JointDistribution p(d);
  Rng rng(5);
  for (size_t i = 0; i < p.size(); ++i) p[i] = rng.NextDouble();
  p.Normalize();
  const CiSpec ci{{0}, {1}, {2}};
  const auto q = CiProjection(p, ci);
  EXPECT_NEAR(q.Mass(), 1.0, 1e-9);
  EXPECT_NEAR(ConditionalMutualInformation(q, ci), 0.0, 1e-9);
}

TEST(IndependenceTest, CiProjectionPreservesXZAndYZMarginals) {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  JointDistribution p(d);
  Rng rng(6);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.1 + rng.NextDouble();
  p.Normalize();
  const CiSpec ci{{0}, {1}, {2}};
  const auto q = CiProjection(p, ci);
  // The I-projection onto the CI set preserves the (X,Z) and (Y,Z)
  // marginals.
  EXPECT_TRUE(q.Marginal({0, 2}).ApproxEquals(p.Marginal({0, 2}), 1e-9));
  EXPECT_TRUE(q.Marginal({1, 2}).ApproxEquals(p.Marginal({1, 2}), 1e-9));
}

TEST(IndependenceTest, CiProjectionFixedPointOnConsistentInput) {
  const auto p = MakeCiConsistent();
  const CiSpec ci{{0}, {1}, {2}};
  const auto q = CiProjection(p, ci);
  EXPECT_TRUE(q.ApproxEquals(p, 1e-9));
}

TEST(IndependenceTest, CiProjectionHandlesUnsaturated) {
  // Four attributes; constraint over the first three only.
  const Domain d = Domain::FromCardinalities({2, 2, 2, 3});
  JointDistribution p(d);
  Rng rng(7);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.05 + rng.NextDouble();
  p.Normalize();
  const CiSpec ci{{0}, {1}, {2}};
  const auto q = CiProjection(p, ci);
  EXPECT_NEAR(q.Mass(), 1.0, 1e-9);
  EXPECT_NEAR(ConditionalMutualInformation(q, ci), 0.0, 1e-9);
  // Conditional of the extra attribute given (x,y,z) is preserved.
  const auto pc = p.ConditionalOn({0, 1, 2});
  const auto qc = q.ConditionalOn({0, 1, 2});
  EXPECT_TRUE(pc.ApproxEquals(qc, 1e-9));
}

TEST(IndependenceTest, MutualInformationOfIdenticalVariables) {
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  p[d.Encode({0, 0})] = 0.5;
  p[d.Encode({1, 1})] = 0.5;
  EXPECT_NEAR(MutualInformation(p, {0}, {1}), std::log(2.0), 1e-10);
}

TEST(IndependenceTest, CmiInvariantToScaling) {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  JointDistribution p(d);
  Rng rng(8);
  for (size_t i = 0; i < p.size(); ++i) p[i] = rng.NextDouble();
  const CiSpec ci{{0}, {1}, {2}};
  const double c1 = ConditionalMutualInformation(p, ci);
  for (size_t i = 0; i < p.size(); ++i) p[i] *= 5.0;  // unnormalized
  const double c2 = ConditionalMutualInformation(p, ci);
  EXPECT_NEAR(c1, c2, 1e-10);
}

TEST(IndependenceTest, ZeroMeasureHasZeroCmi) {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  JointDistribution p(d);
  const CiSpec ci{{0}, {1}, {2}};
  EXPECT_DOUBLE_EQ(ConditionalMutualInformation(p, ci), 0.0);
}

}  // namespace
}  // namespace otclean::prob
