#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "common/cancellation.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace otclean {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Unbounded("x").code(), StatusCode::kUnbounded);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EveryCodeHasAUniqueName) {
  // Exhaustive over the enum: a code added without a StatusCodeName case
  // would print "Unknown" and collide here; kNumStatusCodes pins the
  // one-past-last sentinel so the sweep can't silently shrink.
  std::set<std::string> names;
  for (int c = 0; c < kNumStatusCodes; ++c) {
    const std::string name = StatusCodeName(static_cast<StatusCode>(c));
    EXPECT_NE(name, "Unknown") << "code " << c;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumStatusCodes));
  EXPECT_STREQ(StatusCodeName(static_cast<StatusCode>(kNumStatusCodes)),
               "Unknown");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status Propagating(bool fail) {
  OTCLEAN_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagating(false).ok());
  EXPECT_EQ(Propagating(true).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Result --

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  OTCLEAN_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = HalfOf(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value(), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = HalfOf(7);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(HalfOf(7).value_or(-1), -1);
  EXPECT_EQ(HalfOf(8).value_or(-1), 4);
}

TEST(ResultTest, AssignOrReturnChainsAndPropagates) {
  EXPECT_EQ(QuarterOf(8).value(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());   // 6/2=3 is odd
  EXPECT_FALSE(QuarterOf(7).ok());   // first call fails
}

TEST(ResultTest, MoveOnlyValueWorks) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(42);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 42);
}

// ------------------------------------------------- Checked-access macros --

TEST(CheckOkTest, OkStatusPassesThrough) {
  OTCLEAN_CHECK_OK(Status::OK());
  OTCLEAN_CHECK_OK(Propagating(false));
}

TEST(CheckOkDeathTest, AbortsNamingExpressionAndStatus) {
  // Unlike the assert() it replaced, the check survives NDEBUG builds and
  // names both the failing expression and the status on stderr.
  EXPECT_DEATH(OTCLEAN_CHECK_OK(Status::Internal("boom")),
               "OTCLEAN_CHECK_OK.*Internal: boom");
}

TEST(CheckOkAndAssignTest, AssignsValueOnOk) {
  int half = -1;
  OTCLEAN_CHECK_OK_AND_ASSIGN(half, HalfOf(10));
  EXPECT_EQ(half, 5);
}

TEST(CheckOkAndAssignTest, MoveOnlyValueWorks) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(7);
  };
  std::unique_ptr<int> v;
  OTCLEAN_CHECK_OK_AND_ASSIGN(v, make());
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(CheckOkAndAssignDeathTest, AbortsOnErrorResult) {
  // The old `assert(r.ok()); std::move(r).value();` idiom was UB under
  // NDEBUG (value() on an error Result); the macro must abort instead.
  int half = -1;
  EXPECT_DEATH(OTCLEAN_CHECK_OK_AND_ASSIGN(half, HalfOf(7)),
               "OTCLEAN_CHECK_OK.*InvalidArgument: odd");
  EXPECT_EQ(half, -1);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextUint64BelowRespectsBound) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64Below(17), 17u);
  }
}

TEST(RngTest, NextIntCoversRangeInclusively) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, GaussianHasApproxUnitMoments) {
  Rng rng(6);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(9);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalDegenerateAllZeroReturnsLast) {
  Rng rng(10);
  std::vector<double> w = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.NextCategorical(w), 2u);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(11);
  const auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng base(12);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.NextUint64() == f2.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ----------------------------------------------------------- StringUtil --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleToken) {
  const auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrips) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ","), "x,y,z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, ParseDoubleAcceptsValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
}

TEST(StringUtilTest, ParseDoubleRejectsInvalid) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, ParseIntAcceptsAndRejects) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StringUtilTest, ToLower) { EXPECT_EQ(ToLower("AbC9"), "abc9"); }

// ---------------------------------------------------------- Cancellation --

TEST(CancellationTest, TokenStartsCleanAndLatches) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  ASSERT_NE(token.flag(), nullptr);
  EXPECT_FALSE(token.flag()->load());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.flag()->load());
}

TEST(CancellationTest, CancelIsVisibleAcrossThreads) {
  CancellationToken token;
  std::thread other([&] { token.Cancel(); });
  other.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(DeadlineTest, AfterExpiresAndCountsDown) {
  const Deadline far = Deadline::After(3600.0);
  EXPECT_FALSE(far.infinite());
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining_seconds(), 3500.0);
  EXPECT_LE(far.remaining_seconds(), 3600.0);
  const Deadline past = Deadline::After(0.0);  // non-positive: born expired
  EXPECT_TRUE(past.expired());
  EXPECT_LE(past.remaining_seconds(), 0.0);
  EXPECT_TRUE(Deadline::After(-1.0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_FALSE(Deadline::AfterMillis(3600 * 1000).expired());
}

TEST(DeadlineTest, EarliestComposes) {
  const Deadline inf = Deadline::Infinite();
  const Deadline near = Deadline::After(1.0);
  const Deadline far = Deadline::After(3600.0);
  EXPECT_TRUE(Deadline::Earliest(inf, inf).infinite());
  EXPECT_FALSE(Deadline::Earliest(inf, near).infinite());
  EXPECT_LE(Deadline::Earliest(far, near).remaining_seconds(), 1.0);
  EXPECT_LE(Deadline::Earliest(near, far).remaining_seconds(), 1.0);
  EXPECT_GT(Deadline::Earliest(far, inf).remaining_seconds(), 1.0);
}

TEST(CheckStopTest, OrdersCancelBeforeDeadlineAndNamesTheSite) {
  CancellationToken token;
  EXPECT_TRUE(CheckStop(nullptr, Deadline::Infinite(), "here").ok());
  EXPECT_TRUE(CheckStop(&token, Deadline::Infinite(), "here").ok());

  const Status late = CheckStop(&token, Deadline::After(-1.0), "solve");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(late.message().find("solve"), std::string::npos);

  token.Cancel();
  // Cancellation wins even when the deadline is also expired: the caller
  // asked to stop; blaming the deadline would misreport intent.
  const Status both = CheckStop(&token, Deadline::After(-1.0), "solve");
  EXPECT_EQ(both.code(), StatusCode::kCancelled);
  EXPECT_NE(both.message().find("solve"), std::string::npos);
}

TEST(TimerTest, ElapsedIsMonotone) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

}  // namespace
}  // namespace otclean
