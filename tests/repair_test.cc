#include <gtest/gtest.h>

#include "core/repair.h"
#include "datagen/synthetic.h"

namespace otclean::core {
namespace {

/// Small table over binary x, y and one z attribute with a strong planted
/// violation of x ⟂ y | z.
dataset::Table MakeViolatingTable(size_t n = 600, uint64_t seed = 21) {
  datagen::ScalingDatasetOptions opts;
  opts.num_rows = n;
  opts.num_z_attrs = 1;
  opts.z_card = 2;
  opts.violation = 0.7;
  opts.seed = seed;
  return datagen::MakeScalingDataset(opts).value();
}

CiConstraint XyGivenZ() { return CiConstraint({"x"}, {"y"}, {"z0"}); }

TEST(RepairTest, TableCmiPositiveOnViolation) {
  const auto table = MakeViolatingTable();
  EXPECT_GT(TableCmi(table, XyGivenZ()).value(), 0.05);
}

TEST(RepairTest, RepairReducesCmi) {
  const auto table = MakeViolatingTable();
  RepairOptions opts;
  opts.fast.epsilon = 0.05;
  const auto report = RepairTable(table, XyGivenZ(), opts).value();
  EXPECT_GT(report.initial_cmi, 0.05);
  EXPECT_LT(report.target_cmi, 1e-6);
  // Sampling noise keeps the empirical CMI above zero but far below input.
  EXPECT_LT(report.final_cmi, report.initial_cmi * 0.5);
  EXPECT_EQ(report.repaired.num_rows(), table.num_rows());
}

TEST(RepairTest, RepairedTableHasSameSchema) {
  const auto table = MakeViolatingTable(300);
  const auto report = RepairTable(table, XyGivenZ()).value();
  EXPECT_EQ(report.repaired.num_columns(), table.num_columns());
  EXPECT_EQ(report.repaired.schema().column(0).name, "x");
}

TEST(RepairTest, FitThenApplySupportsStreaming) {
  const auto train = MakeViolatingTable(500, 31);
  const auto stream = MakeViolatingTable(200, 32);
  OtCleanRepairer repairer(XyGivenZ());
  ASSERT_TRUE(repairer.Fit(train).ok());
  EXPECT_TRUE(repairer.fitted());
  Rng rng(5);
  const auto repaired = repairer.Apply(stream, rng).value();
  EXPECT_EQ(repaired.num_rows(), stream.num_rows());
  const double cmi = TableCmi(repaired, XyGivenZ()).value();
  const double dirty_cmi = TableCmi(stream, XyGivenZ()).value();
  EXPECT_LT(cmi, dirty_cmi);
}

TEST(RepairTest, ApplyBeforeFitFails) {
  OtCleanRepairer repairer(XyGivenZ());
  Rng rng(1);
  EXPECT_EQ(repairer.Apply(MakeViolatingTable(50), rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RepairTest, RepairRowPassesThroughMissing) {
  const auto table = MakeViolatingTable(300);
  OtCleanRepairer repairer(XyGivenZ());
  ASSERT_TRUE(repairer.Fit(table).ok());
  Rng rng(2);
  std::vector<int> row = table.Row(0);
  row[0] = dataset::kMissing;
  EXPECT_EQ(repairer.RepairRow(row, rng), row);
}

TEST(RepairTest, UnsaturatedSaturationKeepsOtherColumnsFixed) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 500;
  gen.num_z_attrs = 1;
  gen.z_card = 2;
  gen.num_w_attrs = 2;
  gen.violation = 0.7;
  gen.seed = 41;
  const auto table = datagen::MakeScalingDataset(gen).value();

  RepairOptions opts;
  opts.use_saturation = true;
  OtCleanRepairer repairer(XyGivenZ(), opts);
  ASSERT_TRUE(repairer.Fit(table).ok());
  Rng rng(3);
  const auto repaired = repairer.Apply(table, rng).value();
  // W columns (3, 4 are w0, w1) must be untouched.
  const auto w0 = table.schema().ColumnIndex("w0").value();
  const auto w1 = table.schema().ColumnIndex("w1").value();
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(repaired.Value(r, w0), table.Value(r, w0));
    EXPECT_EQ(repaired.Value(r, w1), table.Value(r, w1));
  }
  EXPECT_LT(TableCmi(repaired, XyGivenZ()).value(),
            TableCmi(table, XyGivenZ()).value());
}

TEST(RepairTest, NaiveUnsaturatedAlsoRepairs) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 400;
  gen.num_z_attrs = 1;
  gen.z_card = 2;
  gen.num_w_attrs = 1;
  gen.w_card = 2;
  gen.violation = 0.7;
  gen.seed = 43;
  const auto table = datagen::MakeScalingDataset(gen).value();

  RepairOptions opts;
  opts.use_saturation = false;  // clean the full joint
  const auto report = RepairTable(table, XyGivenZ(), opts).value();
  EXPECT_LT(report.final_cmi, report.initial_cmi);
}

TEST(RepairTest, MapRepairIsDeterministic) {
  const auto table = MakeViolatingTable(300, 51);
  RepairOptions opts;
  opts.sample_repair = false;
  OtCleanRepairer repairer(XyGivenZ(), opts);
  ASSERT_TRUE(repairer.Fit(table).ok());
  Rng r1(1), r2(999);
  const auto a = repairer.Apply(table, r1).value();
  const auto b = repairer.Apply(table, r2).value();
  for (size_t r = 0; r < a.num_rows(); ++r) EXPECT_EQ(a.Row(r), b.Row(r));
}

TEST(RepairTest, QclpSolverPathWorksOnSmallDomain) {
  // x ⟂ y | z0 is saturated for a 3-column table.
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 200;
  gen.num_z_attrs = 1;
  gen.z_card = 2;
  gen.violation = 0.7;
  gen.seed = 61;
  const auto table = datagen::MakeScalingDataset(gen).value();
  RepairOptions opts;
  opts.solver = Solver::kQclp;
  const auto report = RepairTable(table, XyGivenZ(), opts).value();
  EXPECT_LT(report.target_cmi, 1e-6);
  EXPECT_LT(report.final_cmi, report.initial_cmi);
}

TEST(RepairTest, CustomCostIsRespected) {
  const auto table = MakeViolatingTable(400, 71);
  // A cost that forbids changing x (attribute 0 of the U-domain).
  ot::FairnessCost cost({0}, 3, 1e6);
  RepairOptions opts;
  OtCleanRepairer repairer(XyGivenZ(), opts);
  ASSERT_TRUE(repairer.Fit(table, &cost).ok());
  Rng rng(4);
  const auto repaired = repairer.Apply(table, rng).value();
  const auto x_col = table.schema().ColumnIndex("x").value();
  size_t x_changes = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (repaired.Value(r, x_col) != table.Value(r, x_col)) ++x_changes;
  }
  // Changing x is prohibitively expensive, so (almost) no x updates.
  EXPECT_LT(x_changes, table.num_rows() / 50);
}

TEST(RepairTest, UnknownConstraintColumnFails) {
  const auto table = MakeViolatingTable(100);
  const CiConstraint bad({"nope"}, {"y"}, {"z0"});
  EXPECT_FALSE(RepairTable(table, bad).ok());
}

}  // namespace
}  // namespace otclean::core
