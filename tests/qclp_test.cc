#include <gtest/gtest.h>

#include "core/qclp_cleaner.h"
#include "ot/cost.h"
#include "prob/independence.h"

namespace otclean::core {
namespace {

using prob::CiSpec;
using prob::Domain;
using prob::JointDistribution;

JointDistribution MakeD2() {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  std::vector<double> counts(8, 0.0);
  counts[d.Encode({1, 0, 0})] += 1;
  counts[d.Encode({1, 0, 1})] += 1;
  counts[d.Encode({1, 1, 0})] += 2;
  return JointDistribution::FromCounts(d, counts);
}

TEST(QclpTest, D2TargetSatisfiesConstraint) {
  const auto p = MakeD2();
  // Saturated spec over (X, Y, Z): X plays the role of an always-1 context
  // attribute; the constraint is Y ⟂ Z | X here so every attribute is
  // covered (Section 4.1 assumes saturation).
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  EXPECT_LT(r.target_cmi, 1e-6);
}

TEST(QclpTest, D2OptimalCostBeatsThePaperExampleRepair) {
  // Example 3.4 exhibits a repair of cost 1/4 (move 1/4 of the mass from
  // (1,1,0) to (1,1,1)). The QCLP path solves exact LPs and does better:
  // moving 1/6 of the mass from (1,0,1) to (1,1,1) reaches an exactly
  // CI-consistent target at cost 1/6 ≈ 0.1667 — cheaper than both the
  // example repair and the 4/21 fixed point the dense-tableau engine used
  // to settle on.
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  EXPECT_NEAR(r.transport_cost, 1.0 / 6.0, 0.02);
  EXPECT_LE(r.transport_cost, 4.0 / 21.0 + 1e-9);
  EXPECT_LE(r.transport_cost, 0.25 + 1e-9);
  // The *plan's* actual target marginal (not just the projected Q) must be
  // CI-consistent.
  const auto colm = r.plan.TargetMarginal();
  JointDistribution t(p.domain());
  for (size_t j = 0; j < r.plan.col_cells().size(); ++j) {
    t[r.plan.col_cells()[j]] = colm[j];
  }
  t.Normalize();
  EXPECT_LT(prob::ConditionalMutualInformation(t, ci), 1e-9);
}

TEST(QclpTest, PlanRowMarginalsMatchData) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  const auto src = r.plan.SourceMarginal();
  ASSERT_EQ(src.size(), 3u);
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_NEAR(src[i], p[r.plan.row_cells()[i]], 1e-6);
  }
}

TEST(QclpTest, MarginalIndependenceSaturatedPair) {
  // Two attributes only: X ⟂ Y saturated.
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  p[d.Encode({0, 0})] = 0.45;
  p[d.Encode({1, 1})] = 0.45;
  p[d.Encode({0, 1})] = 0.05;
  p[d.Encode({1, 0})] = 0.05;
  const CiSpec ci{{0}, {1}, {}};
  ot::EuclideanCost cost(2);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  EXPECT_LT(r.target_cmi, 1e-6);
  EXPECT_GT(r.transport_cost, 0.0);
}

TEST(QclpTest, RequiresSaturatedSpec) {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  const auto p = JointDistribution::Uniform(d);
  const CiSpec unsaturated{{0}, {1}, {}};
  ot::EuclideanCost cost(3);
  EXPECT_FALSE(QclpClean(p, unsaturated, cost, QclpOptions()).ok());
}

TEST(QclpTest, RejectsUnnormalizedInput) {
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  p[0] = 3.0;
  const CiSpec ci{{0}, {1}, {}};
  ot::EuclideanCost cost(2);
  EXPECT_FALSE(QclpClean(p, ci, cost, QclpOptions()).ok());
}

TEST(QclpTest, ConsistentInputIsNearZeroCost) {
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  // Independent: P(x)P(y) with p=0.6, q=0.3.
  p[d.Encode({0, 0})] = 0.4 * 0.7;
  p[d.Encode({0, 1})] = 0.4 * 0.3;
  p[d.Encode({1, 0})] = 0.6 * 0.7;
  p[d.Encode({1, 1})] = 0.6 * 0.3;
  const CiSpec ci{{0}, {1}, {}};
  ot::EuclideanCost cost(2);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  EXPECT_NEAR(r.transport_cost, 0.0, 1e-6);
}

TEST(QclpTest, TracksTableauBytes) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  // 3 active rows, 8 columns -> 24 vars, 11 constraints.
  EXPECT_GT(r.peak_tableau_bytes, 24u * 8u);
  EXPECT_GT(r.total_lp_pivots, 0u);
}

TEST(QclpTest, RestrictColumnsShrinksPlan) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  QclpOptions opts;
  opts.restrict_columns_to_active = true;
  const auto r = QclpClean(p, ci, cost, opts).value();
  EXPECT_EQ(r.plan.col_cells().size(), 3u);
}

TEST(QclpTest, RejectsLogDomainRequestLoudly) {
  // The QCLP path solves LPs and never iterates Sinkhorn; a log-domain
  // request cannot be honored and must fail loudly instead of silently
  // no-opping (the PR 5 silently-ignored-options precedent).
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  QclpOptions opts;
  opts.log_domain = true;
  const auto r = QclpClean(p, ci, cost, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("log_domain"), std::string::npos);
}

TEST(QclpTest, MultiQclpMatchesSingleQclp) {
  // QclpClean is a thin wrapper over QclpCleanMulti: a singleton saturated
  // spec must take the identical alternation path — same cost, same target,
  // same iteration count. (Referenced by extensions_test's
  // RepairTableMultiValidates, which pins the repair-layer dispatch.)
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const QclpOptions opts;
  const auto single = QclpClean(p, ci, cost, opts).value();
  const auto multi = QclpCleanMulti(p, {ci}, cost, opts).value();
  EXPECT_EQ(multi.transport_cost, single.transport_cost);
  EXPECT_EQ(multi.target_cmi, single.target_cmi);
  EXPECT_EQ(multi.outer_iterations, single.outer_iterations);
  EXPECT_EQ(multi.converged, single.converged);
  ASSERT_EQ(multi.target.size(), single.target.size());
  for (size_t i = 0; i < multi.target.size(); ++i) {
    EXPECT_EQ(multi.target[i], single.target[i]);
  }
}

TEST(QclpTest, PreCancelledTokenAbortsWithCancelled) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  CancellationToken token;
  token.Cancel();
  QclpOptions opts;
  opts.cancel_token = &token;
  const auto r = QclpClean(p, ci, cost, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(QclpTest, ExpiredDeadlineAbortsWithDeadlineExceeded) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  QclpOptions opts;
  opts.deadline = Deadline::After(-1.0);
  const auto r = QclpClean(p, ci, cost, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace otclean::core
