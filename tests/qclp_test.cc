#include <gtest/gtest.h>

#include "core/qclp_cleaner.h"
#include "ot/cost.h"
#include "prob/independence.h"

namespace otclean::core {
namespace {

using prob::CiSpec;
using prob::Domain;
using prob::JointDistribution;

JointDistribution MakeD2() {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  std::vector<double> counts(8, 0.0);
  counts[d.Encode({1, 0, 0})] += 1;
  counts[d.Encode({1, 0, 1})] += 1;
  counts[d.Encode({1, 1, 0})] += 2;
  return JointDistribution::FromCounts(d, counts);
}

TEST(QclpTest, D2TargetSatisfiesConstraint) {
  const auto p = MakeD2();
  // Saturated spec over (X, Y, Z): X plays the role of an always-1 context
  // attribute; the constraint is Y ⟂ Z | X here so every attribute is
  // covered (Section 4.1 assumes saturation).
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  EXPECT_LT(r.target_cmi, 1e-6);
}

TEST(QclpTest, D2OptimalCostBeatsThePaperExampleRepair) {
  // Example 3.4 exhibits a repair of cost 1/4 (move 1/4 of the mass from
  // (1,1,0) to (1,1,1)). The true OT optimum is cheaper: rebalancing the
  // (1,0,1) cell into (1,0,0) and (1,1,1) reaches a CI-consistent target at
  // cost 4/21 ≈ 0.1905. The QCLP path solves exact LPs and finds it.
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  EXPECT_NEAR(r.transport_cost, 4.0 / 21.0, 0.02);
  EXPECT_LE(r.transport_cost, 0.25 + 1e-9);
  // The *plan's* actual target marginal (not just the projected Q) must be
  // CI-consistent.
  const auto colm = r.plan.TargetMarginal();
  JointDistribution t(p.domain());
  for (size_t j = 0; j < r.plan.col_cells().size(); ++j) {
    t[r.plan.col_cells()[j]] = colm[j];
  }
  t.Normalize();
  EXPECT_LT(prob::ConditionalMutualInformation(t, ci), 1e-9);
}

TEST(QclpTest, PlanRowMarginalsMatchData) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  const auto src = r.plan.SourceMarginal();
  ASSERT_EQ(src.size(), 3u);
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_NEAR(src[i], p[r.plan.row_cells()[i]], 1e-6);
  }
}

TEST(QclpTest, MarginalIndependenceSaturatedPair) {
  // Two attributes only: X ⟂ Y saturated.
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  p[d.Encode({0, 0})] = 0.45;
  p[d.Encode({1, 1})] = 0.45;
  p[d.Encode({0, 1})] = 0.05;
  p[d.Encode({1, 0})] = 0.05;
  const CiSpec ci{{0}, {1}, {}};
  ot::EuclideanCost cost(2);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  EXPECT_LT(r.target_cmi, 1e-6);
  EXPECT_GT(r.transport_cost, 0.0);
}

TEST(QclpTest, RequiresSaturatedSpec) {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  const auto p = JointDistribution::Uniform(d);
  const CiSpec unsaturated{{0}, {1}, {}};
  ot::EuclideanCost cost(3);
  EXPECT_FALSE(QclpClean(p, unsaturated, cost, QclpOptions()).ok());
}

TEST(QclpTest, RejectsUnnormalizedInput) {
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  p[0] = 3.0;
  const CiSpec ci{{0}, {1}, {}};
  ot::EuclideanCost cost(2);
  EXPECT_FALSE(QclpClean(p, ci, cost, QclpOptions()).ok());
}

TEST(QclpTest, ConsistentInputIsNearZeroCost) {
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  // Independent: P(x)P(y) with p=0.6, q=0.3.
  p[d.Encode({0, 0})] = 0.4 * 0.7;
  p[d.Encode({0, 1})] = 0.4 * 0.3;
  p[d.Encode({1, 0})] = 0.6 * 0.7;
  p[d.Encode({1, 1})] = 0.6 * 0.3;
  const CiSpec ci{{0}, {1}, {}};
  ot::EuclideanCost cost(2);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  EXPECT_NEAR(r.transport_cost, 0.0, 1e-6);
}

TEST(QclpTest, TracksTableauBytes) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  const auto r = QclpClean(p, ci, cost, QclpOptions()).value();
  // 3 active rows, 8 columns -> 24 vars, 11 constraints.
  EXPECT_GT(r.peak_tableau_bytes, 24u * 8u);
  EXPECT_GT(r.total_lp_pivots, 0u);
}

TEST(QclpTest, RestrictColumnsShrinksPlan) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {0}};
  ot::EuclideanCost cost(3);
  QclpOptions opts;
  opts.restrict_columns_to_active = true;
  const auto r = QclpClean(p, ci, cost, opts).value();
  EXPECT_EQ(r.plan.col_cells().size(), 3u);
}

}  // namespace
}  // namespace otclean::core
