// Fixture SIMD translation unit (AVX2 tier).
namespace fixture {
float MulAdd2(float a, float b, float c) { return a * b + c; }
}  // namespace fixture
