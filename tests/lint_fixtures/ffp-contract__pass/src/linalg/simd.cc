// Fixture SIMD translation unit (portable baseline tier).
namespace fixture {
float MulAdd(float a, float b, float c) { return a * b + c; }
}  // namespace fixture
