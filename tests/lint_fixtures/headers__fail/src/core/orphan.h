#ifndef OTCLEAN_CORE_WRONG_GUARD_H_
#define OTCLEAN_CORE_WRONG_GUARD_H_

// Fixture: two violations — the guard does not match the path-derived
// OTCLEAN_CORE_ORPHAN_H_, and the header is neither reachable from the
// umbrella nor marked internal.
namespace fixture {
int Orphan();
}  // namespace fixture

#endif  // OTCLEAN_CORE_WRONG_GUARD_H_
