#ifndef OTCLEAN_OTCLEAN_H_
#define OTCLEAN_OTCLEAN_H_

// Fixture umbrella header that forgets to include src/core/orphan.h.

#endif  // OTCLEAN_OTCLEAN_H_
