// Fixture SIMD translation unit compiled without -ffp-contract=off.
namespace fixture {
float MulAdd(float a, float b, float c) { return a * b + c; }
}  // namespace fixture
