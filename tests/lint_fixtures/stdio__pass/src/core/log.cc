// Fixture: stderr diagnostics are fine in library code; only stdout is
// reserved (a comment mentioning std::cout or printf must not be flagged).
#include <cstdio>
#include <iostream>

namespace fixture {

void Warn(const char* msg) {
  std::fprintf(stderr, "warning: %s\n", msg);
  std::cerr << "warning: " << msg << "\n";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s", msg);  // formatting, not stdout
}

}  // namespace fixture
