// Fixture: raw lock types outside common/thread_annotations.h must be
// flagged — clang -Wthread-safety cannot see locking it is not told about.
#include <mutex>

namespace fixture {

std::mutex g_mu;

void Locked() { std::lock_guard<std::mutex> lock(g_mu); }

}  // namespace fixture
