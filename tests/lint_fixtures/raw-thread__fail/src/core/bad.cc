// Fixture: raw std::thread outside src/linalg/ with no justification pragma
// must be flagged.
#include <thread>

namespace fixture {

void Spawn() {
  std::thread t([] {});
  t.join();
}

}  // namespace fixture
