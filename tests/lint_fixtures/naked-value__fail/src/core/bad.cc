// Fixture: a naked .value() with no ok()/has_value() check or checked
// macro anywhere in the preceding lines must be flagged.
#include <optional>

namespace fixture {

int Pad1() { return 1; }
int Pad2() { return 2; }
int Pad3() { return 3; }
int Pad4() { return 4; }
int Pad5() { return 5; }
int Pad6() { return 6; }
int Pad7() { return 7; }
int Pad8() { return 8; }
int Pad9() { return 9; }
int Pad10() { return 10; }
int Pad11() { return 11; }
int Pad12() { return 12; }
int Pad13() { return 13; }

int Use(const std::optional<int>& o) {
  return o.value();
}

}  // namespace fixture
