// Fixture: .value() with a visible ok() guard (or the checked macros) in
// the preceding lines is fine.
#include <optional>

namespace fixture {

struct Result {
  bool ok() const { return v.has_value(); }
  int value() const { return *v; }
  std::optional<int> v;
};

int Use(const Result& r) {
  if (r.ok()) {
    return r.value();
  }
  return -1;
}

int UseOptional(const std::optional<int>& o) {
  if (o.has_value()) {
    return o.value();
  }
  return -1;
}

}  // namespace fixture
