// Fixture: library code writing to stdout must be flagged.
#include <iostream>

namespace fixture {

void Report(int n) { std::cout << "repaired " << n << " rows\n"; }

}  // namespace fixture
