// Fixture: code that locks through the annotated wrappers (and only
// mentions raw lock types in comments, which must not be flagged: a
// std::mutex named in prose is fine).
#include "common/thread_annotations.h"

namespace fixture {

void Locked(Mutex& mu) {
  mu.Lock();
  mu.Unlock();
}

}  // namespace fixture
