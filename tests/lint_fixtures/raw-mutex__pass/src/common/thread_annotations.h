#ifndef OTCLEAN_COMMON_THREAD_ANNOTATIONS_H_
#define OTCLEAN_COMMON_THREAD_ANNOTATIONS_H_

// Fixture: this is the one file allowed to touch raw std:: lock types — it
// defines the annotated wrappers everything else must use.
#include <condition_variable>
#include <mutex>

namespace fixture {

class Mutex {
 public:
  void Lock() { mu_.lock(); }
  void Unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

}  // namespace fixture

#endif  // OTCLEAN_COMMON_THREAD_ANNOTATIONS_H_
