#ifndef OTCLEAN_CORE_API_H_
#define OTCLEAN_CORE_API_H_

// Fixture public header: canonical path-derived guard, reachable from the
// umbrella header.
namespace fixture {
int Api();
}  // namespace fixture

#endif  // OTCLEAN_CORE_API_H_
