#ifndef OTCLEAN_CORE_DETAIL_H_
#define OTCLEAN_CORE_DETAIL_H_

// otclean-lint: internal-header — implementation detail deliberately not
// exported through the umbrella header.
namespace fixture {
int Detail();
}  // namespace fixture

#endif  // OTCLEAN_CORE_DETAIL_H_
