#ifndef OTCLEAN_OTCLEAN_H_
#define OTCLEAN_OTCLEAN_H_

// Fixture umbrella header: the grandfathered OTCLEAN_OTCLEAN_H_ guard and
// the include that makes core/api.h reachable.
#include "core/api.h"

#endif  // OTCLEAN_OTCLEAN_H_
