// Fixture: outside linalg/, a raw thread needs an explicit justification
// pragma on the line above (or the same line) to pass.
#include <thread>

namespace fixture {

void RunExecutor() {
  // Executor thread, not a kernel worker — justified bypass.
  // otclean-lint: allow(raw-thread)
  std::thread t([] {});
  t.join();
}

}  // namespace fixture
