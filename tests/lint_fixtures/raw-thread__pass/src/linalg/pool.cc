// Fixture: std::thread inside src/linalg/ is the one allowed home — the
// ThreadPool owns its workers here.
#include <thread>
#include <vector>

namespace fixture {

void SpawnWorkers(std::vector<std::thread>* workers) {
  workers->emplace_back([] {});
}

}  // namespace fixture
