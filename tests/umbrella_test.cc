// Compile test for the umbrella header: this TU includes *only*
// otclean/otclean.h and must see every public module. Each reference below
// touches one of the sub-APIs (notably the linalg/, lp/, nmf/, and prob/
// headers the umbrella used to omit) so a regression breaks the build, not
// just this test's assertions.

#include <gtest/gtest.h>

#include "otclean/otclean.h"

namespace otclean {
namespace {

TEST(UmbrellaTest, LinalgVisible) {
  linalg::Matrix m(2, 2, 1.0);
  linalg::Vector v = linalg::Vector::Ones(2);
  EXPECT_EQ(m.MatVec(v).size(), 2u);
  EXPECT_EQ(linalg::SparseMatrix::FromDense(m).nnz(), 4u);
  const linalg::DenseTransportKernel kernel(m, /*num_threads=*/1);
  EXPECT_EQ(kernel.nnz(), 4u);
  EXPECT_GE(linalg::ResolveThreadCount(0), 1u);
}

TEST(UmbrellaTest, LpVisible) {
  lp::LpProblem problem;
  problem.a = linalg::Matrix(1, 1, 1.0);
  problem.b = linalg::Vector(std::vector<double>{1.0});
  problem.c = linalg::Vector(std::vector<double>{1.0});
  EXPECT_TRUE(lp::SolveSimplex(problem, lp::SimplexOptions{}).ok());
}

TEST(UmbrellaTest, NmfVisible) {
  Rng rng(7);
  nmf::KlNmfOptions options;
  options.rank = 1;
  EXPECT_TRUE(nmf::KlNmf(linalg::Matrix(2, 2, 0.25), options, rng).ok());
}

TEST(UmbrellaTest, ProbVisible) {
  const prob::Domain dom = prob::Domain::FromCardinalities({2, 2});
  prob::JointDistribution joint(dom);
  joint[0] = 1.0;
  EXPECT_NEAR(joint.Mass(), 1.0, 1e-12);
}

}  // namespace
}  // namespace otclean
