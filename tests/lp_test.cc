#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "lp/transport_lp.h"

namespace otclean::lp {
namespace {

LpProblem MakeProblem(size_t m, size_t n) {
  LpProblem p;
  p.a = linalg::Matrix(m, n, 0.0);
  p.b = linalg::Vector(m, 0.0);
  p.c = linalg::Vector(n, 0.0);
  return p;
}

TEST(SimplexTest, SolvesTrivialEquality) {
  // min x0 + 2 x1  s.t.  x0 + x1 = 1 -> x0 = 1.
  LpProblem p = MakeProblem(1, 2);
  p.a(0, 0) = 1.0;
  p.a(0, 1) = 1.0;
  p.b[0] = 1.0;
  p.c[0] = 1.0;
  p.c[1] = 2.0;
  const auto sol = SolveSimplex(p).value();
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
}

TEST(SimplexTest, HandlesNegativeRhsBySignFlip) {
  // -x0 - x1 = -1 is the same constraint as above.
  LpProblem p = MakeProblem(1, 2);
  p.a(0, 0) = -1.0;
  p.a(0, 1) = -1.0;
  p.b[0] = -1.0;
  p.c[0] = 3.0;
  p.c[1] = 1.0;
  const auto sol = SolveSimplex(p).value();
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

TEST(SimplexTest, TwoConstraintProblem) {
  // min -x0 - 2x1  s.t. x0 + x1 + s1 = 4, x1 + s2 = 2  ->  x0=2, x1=2.
  LpProblem p = MakeProblem(2, 4);
  p.a(0, 0) = 1.0;
  p.a(0, 1) = 1.0;
  p.a(0, 2) = 1.0;
  p.a(1, 1) = 1.0;
  p.a(1, 3) = 1.0;
  p.b[0] = 4.0;
  p.b[1] = 2.0;
  p.c[0] = -1.0;
  p.c[1] = -2.0;
  const auto sol = SolveSimplex(p).value();
  EXPECT_NEAR(sol.objective, -6.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x0 = 1 and x0 = 2 cannot both hold.
  LpProblem p = MakeProblem(2, 1);
  p.a(0, 0) = 1.0;
  p.a(1, 0) = 1.0;
  p.b[0] = 1.0;
  p.b[1] = 2.0;
  p.c[0] = 1.0;
  EXPECT_EQ(SolveSimplex(p).status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x0 s.t. x0 - x1 = 0: x0 = x1 can grow without bound.
  LpProblem p = MakeProblem(1, 2);
  p.a(0, 0) = 1.0;
  p.a(0, 1) = -1.0;
  p.b[0] = 0.0;
  p.c[0] = -1.0;
  EXPECT_EQ(SolveSimplex(p).status().code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, ToleratesRedundantConstraints) {
  // Same constraint twice.
  LpProblem p = MakeProblem(2, 2);
  for (int r = 0; r < 2; ++r) {
    p.a(r, 0) = 1.0;
    p.a(r, 1) = 1.0;
    p.b[r] = 1.0;
  }
  p.c[0] = 5.0;
  p.c[1] = 1.0;
  const auto sol = SolveSimplex(p).value();
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
}

TEST(SimplexTest, RejectsDimensionMismatch) {
  LpProblem p = MakeProblem(1, 2);
  p.b = linalg::Vector(2, 0.0);
  EXPECT_FALSE(SolveSimplex(p).ok());
  LpProblem q = MakeProblem(0, 0);
  EXPECT_FALSE(SolveSimplex(q).ok());
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple constraints meeting at a degenerate vertex.
  LpProblem p = MakeProblem(3, 3);
  p.a(0, 0) = 1.0;
  p.a(0, 1) = 1.0;
  p.a(1, 1) = 1.0;
  p.a(1, 2) = 1.0;
  p.a(2, 0) = 1.0;
  p.a(2, 2) = 1.0;
  p.b[0] = 1.0;
  p.b[1] = 1.0;
  p.b[2] = 1.0;
  p.c[0] = 1.0;
  p.c[1] = 1.0;
  p.c[2] = 1.0;
  const auto sol = SolveSimplex(p).value();
  EXPECT_NEAR(sol.objective, 1.5, 1e-9);
}

// ------------------------------------------------------------- Transport --

TEST(TransportTest, IdenticalMarginalsZeroCostOnDiagonal) {
  linalg::Matrix cost(2, 2, 1.0);
  cost(0, 0) = 0.0;
  cost(1, 1) = 0.0;
  linalg::Vector p(std::vector<double>{0.5, 0.5});
  const auto r = SolveTransport(cost, p, p).value();
  EXPECT_NEAR(r.cost, 0.0, 1e-9);
  EXPECT_NEAR(r.plan(0, 0), 0.5, 1e-9);
  EXPECT_NEAR(r.plan(1, 1), 0.5, 1e-9);
}

TEST(TransportTest, SimpleMassMove) {
  // All mass at source 0 must reach sinks 0 (0.3) and 1 (0.7).
  linalg::Matrix cost(1, 2);
  cost(0, 0) = 1.0;
  cost(0, 1) = 2.0;
  linalg::Vector p(std::vector<double>{1.0});
  linalg::Vector q(std::vector<double>{0.3, 0.7});
  const auto r = SolveTransport(cost, p, q).value();
  EXPECT_NEAR(r.cost, 0.3 * 1.0 + 0.7 * 2.0, 1e-9);
}

TEST(TransportTest, MatchesHandComputedOptimum) {
  // Classic 2x2: moving to the cheaper diagonal.
  linalg::Matrix cost(2, 2);
  cost(0, 0) = 0.0;
  cost(0, 1) = 1.0;
  cost(1, 0) = 1.0;
  cost(1, 1) = 0.0;
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto r = SolveTransport(cost, p, q).value();
  // Optimal: keep 0.4 at 0, move 0.3 from 0->1; total cost 0.3.
  EXPECT_NEAR(r.cost, 0.3, 1e-9);
}

TEST(TransportTest, MarginalsRespected) {
  linalg::Matrix cost(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      cost(i, j) = static_cast<double>((i + 2 * j) % 3);
    }
  }
  linalg::Vector p(std::vector<double>{0.2, 0.5, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.4, 0.2});
  const auto r = SolveTransport(cost, p, q).value();
  const auto rows = r.plan.RowSums();
  const auto cols = r.plan.ColSums();
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(rows[i], p[i], 1e-8);
  for (size_t j = 0; j < 3; ++j) EXPECT_NEAR(cols[j], q[j], 1e-8);
}

TEST(TransportTest, RejectsMassMismatch) {
  linalg::Matrix cost(1, 1, 0.0);
  linalg::Vector p(std::vector<double>{1.0});
  linalg::Vector q(std::vector<double>{0.5});
  EXPECT_FALSE(SolveTransport(cost, p, q).ok());
}

TEST(TransportTest, RejectsDimensionMismatch) {
  linalg::Matrix cost(2, 2, 0.0);
  linalg::Vector p(std::vector<double>{1.0});
  linalg::Vector q(std::vector<double>{0.5, 0.5});
  EXPECT_FALSE(SolveTransport(cost, p, q).ok());
}

TEST(TransportTest, CostIsMetricLowerBoundedByMarginalDifference) {
  // With 0/1 cost, OT cost equals total variation distance.
  linalg::Matrix cost(2, 2, 1.0);
  cost(0, 0) = 0.0;
  cost(1, 1) = 0.0;
  linalg::Vector p(std::vector<double>{0.9, 0.1});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto r = SolveTransport(cost, p, q).value();
  EXPECT_NEAR(r.cost, 0.5, 1e-9);  // TV = 0.5
}

}  // namespace
}  // namespace otclean::lp
