#include <gtest/gtest.h>

#include "core/repair.h"
#include "datagen/datasets.h"
#include "datagen/synthetic.h"

namespace otclean::datagen {
namespace {

TEST(SyntheticTest, MakeColumnLabels) {
  const auto col = MakeColumn("c", 3);
  EXPECT_EQ(col.cardinality(), 3u);
  EXPECT_EQ(col.categories[2], "v2");
}

TEST(SyntheticTest, PeakedWeightsPeakAtCenter) {
  const auto w = PeakedWeights(5, 2.0, 1.0);
  EXPECT_EQ(w.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_LE(w[i], w[2] + 1e-12);
}

TEST(SyntheticTest, ScalingDatasetShape) {
  ScalingDatasetOptions opts;
  opts.num_rows = 500;
  opts.num_z_attrs = 2;
  opts.z_card = 3;
  opts.num_w_attrs = 1;
  const auto t = MakeScalingDataset(opts).value();
  EXPECT_EQ(t.num_rows(), 500u);
  EXPECT_EQ(t.num_columns(), 5u);
  EXPECT_EQ(t.schema().column(0).name, "x");
  EXPECT_EQ(t.schema().column(4).name, "w0");
}

TEST(SyntheticTest, ViolationStrengthControlsCmi) {
  ScalingDatasetOptions weak;
  weak.num_rows = 4000;
  weak.violation = 0.05;
  weak.seed = 2;
  ScalingDatasetOptions strong = weak;
  strong.violation = 0.9;
  const auto tw = MakeScalingDataset(weak).value();
  const auto ts = MakeScalingDataset(strong).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0", "z1"});
  const double cmi_w = core::TableCmi(tw, ci).value();
  const double cmi_s = core::TableCmi(ts, ci).value();
  EXPECT_GT(cmi_s, cmi_w * 3.0);
}

TEST(SyntheticTest, DeterministicForSeed) {
  ScalingDatasetOptions opts;
  opts.num_rows = 100;
  const auto a = MakeScalingDataset(opts).value();
  const auto b = MakeScalingDataset(opts).value();
  for (size_t r = 0; r < a.num_rows(); ++r) EXPECT_EQ(a.Row(r), b.Row(r));
}

TEST(DatasetsTest, AdultShapeMatchesTable2) {
  const auto bundle = MakeAdult(2000, 1).value();
  EXPECT_EQ(bundle.table.num_rows(), 2000u);
  EXPECT_EQ(bundle.table.num_columns(), 14u);
  EXPECT_EQ(bundle.label_col, "income");
  EXPECT_EQ(bundle.sensitive_col, "sex");
  // Average domain size in the ballpark of Table 2's 5.42.
  const double avg = bundle.table.schema().ToDomain().AverageCardinality();
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 7.0);
}

TEST(DatasetsTest, AdultHasPlantedCiViolation) {
  const auto bundle = MakeAdult(6000, 2).value();
  const double cmi = core::TableCmi(bundle.table, bundle.constraint).value();
  EXPECT_GT(cmi, 0.02);
}

TEST(DatasetsTest, AdultLabelHasBothClasses) {
  const auto bundle = MakeAdult(2000, 3).value();
  const auto col = bundle.table.schema().ColumnIndex("income").value();
  size_t pos = 0;
  for (size_t r = 0; r < bundle.table.num_rows(); ++r) {
    pos += bundle.table.Value(r, col) == 1;
  }
  EXPECT_GT(pos, bundle.table.num_rows() / 10);
  EXPECT_LT(pos, bundle.table.num_rows() * 9 / 10);
}

TEST(DatasetsTest, CompasShape) {
  const auto bundle = MakeCompas(2000, 4).value();
  EXPECT_EQ(bundle.table.num_columns(), 12u);
  EXPECT_EQ(bundle.sensitive_col, "race");
  EXPECT_EQ(bundle.inadmissible_cols.size(), 2u);
}

TEST(DatasetsTest, CompasHasPlantedCiViolation) {
  const auto bundle = MakeCompas(6000, 5).value();
  EXPECT_GT(core::TableCmi(bundle.table, bundle.constraint).value(), 0.02);
}

TEST(DatasetsTest, CarApproximatelySatisfiesConstraintWhenClean) {
  const auto bundle = MakeCar(1728, 6).value();
  // doors plays no role in class: CMI should be small (sampling noise only).
  EXPECT_LT(core::TableCmi(bundle.table, bundle.constraint).value(), 0.05);
}

TEST(DatasetsTest, CarShape) {
  const auto bundle = MakeCar(1728, 7).value();
  EXPECT_EQ(bundle.table.num_columns(), 7u);
  EXPECT_EQ(bundle.label_col, "class");
}

TEST(DatasetsTest, BostonApproximatelySatisfiesConstraintWhenClean) {
  const auto bundle = MakeBoston(2000, 8).value();
  EXPECT_LT(core::TableCmi(bundle.table, bundle.constraint).value(), 0.06);
}

TEST(DatasetsTest, BostonShape) {
  const auto bundle = MakeBoston(506, 9).value();
  EXPECT_EQ(bundle.table.num_columns(), 14u);
  EXPECT_EQ(bundle.label_col, "medv");
}

TEST(DatasetsTest, MakeAllDatasetsReturnsFour) {
  const auto all = MakeAllDatasets(11).value();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "Adult");
  EXPECT_EQ(all[1].name, "COMPAS");
  EXPECT_EQ(all[2].name, "Car");
  EXPECT_EQ(all[3].name, "Boston");
}

}  // namespace
}  // namespace otclean::datagen
