#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "ot/cost.h"
#include "ot/exact.h"
#include "ot/plan.h"
#include "ot/sinkhorn.h"

namespace otclean::ot {
namespace {

// ------------------------------------------------------------------ Cost --

TEST(CostTest, EuclideanUnitWeights) {
  EuclideanCost c(3);
  EXPECT_DOUBLE_EQ(c.Cost({0, 0, 0}, {0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(c.Cost({0, 0, 0}, {1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(c.Cost({0, 0, 0}, {3, 4, 0}), 5.0);
}

TEST(CostTest, EuclideanScaled) {
  EuclideanCost c(std::vector<double>{2.0, 1.0});
  EXPECT_DOUBLE_EQ(c.Cost({0, 0}, {1, 0}), 2.0);
}

TEST(CostTest, Hamming) {
  HammingCost c;
  EXPECT_DOUBLE_EQ(c.Cost({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(c.Cost({1, 2, 3}, {0, 2, 4}), 2.0);
}

TEST(CostTest, CosineEdgeCases) {
  CosineCost c;
  EXPECT_DOUBLE_EQ(c.Cost({0, 0}, {0, 0}), 0.0);   // both zero
  EXPECT_DOUBLE_EQ(c.Cost({0, 0}, {1, 0}), 1.0);   // one zero
  EXPECT_NEAR(c.Cost({1, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(c.Cost({1, 0}, {0, 1}), 1.0, 1e-12);
}

TEST(CostTest, CorrelationCost) {
  CorrelationCost c;
  // Perfectly correlated vectors -> cost 0.
  EXPECT_NEAR(c.Cost({0, 1, 2}, {1, 2, 3}), 0.0, 1e-12);
  // Anti-correlated -> cost 2.
  EXPECT_NEAR(c.Cost({0, 1, 2}, {2, 1, 0}), 2.0, 1e-12);
  // Constant vector: falls back to equality test.
  EXPECT_DOUBLE_EQ(c.Cost({1, 1}, {1, 1}), 0.0);
}

TEST(CostTest, LambdaCostWraps) {
  LambdaCost c([](const std::vector<int>& a, const std::vector<int>& b) {
    return a == b ? 0.0 : 42.0;
  });
  EXPECT_DOUBLE_EQ(c.Cost({1}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(c.Cost({1}, {2}), 42.0);
}

TEST(CostTest, FairnessCostFreezesProtectedAttrs) {
  FairnessCost c({0}, 3, 1e6);
  EXPECT_DOUBLE_EQ(c.Cost({0, 1, 2}, {0, 1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(c.Cost({0, 1, 2}, {1, 1, 2}), 1e6);   // frozen changed
  EXPECT_DOUBLE_EQ(c.Cost({0, 1, 2}, {0, 3, 2}), 2.0);   // free attr moved
}

TEST(CostTest, WeightedEuclidean) {
  WeightedEuclideanCost c(std::vector<double>{3.0, 0.0});
  EXPECT_DOUBLE_EQ(c.Cost({0, 0}, {1, 5}), 3.0);
}

TEST(CostTest, BuildCostMatrixFullDomain) {
  const prob::Domain dom = prob::Domain::FromCardinalities({2, 2});
  HammingCost h;
  const linalg::Matrix c = BuildCostMatrix(dom, h);
  EXPECT_EQ(c.rows(), 4u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c(0, 3), 2.0);  // (0,0) vs (1,1)
}

TEST(CostTest, BuildCostMatrixRestricted) {
  const prob::Domain dom = prob::Domain::FromCardinalities({2, 2});
  HammingCost h;
  const linalg::Matrix c = BuildCostMatrix(dom, {1, 2}, {0}, h);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);  // (0,1)->(0,0)
}

TEST(CostTest, InverseStddevWeights) {
  // Attribute 0 varies {0,1} evenly (std 0.5 -> weight 2), attribute 1
  // constant (weight 1).
  const prob::Domain dom = prob::Domain::FromCardinalities({2, 2});
  linalg::Vector p(4, 0.0);
  p[dom.Encode({0, 0})] = 0.5;
  p[dom.Encode({1, 0})] = 0.5;
  const auto w = InverseStddevWeights(dom, p);
  EXPECT_NEAR(w[0], 2.0, 1e-9);
  EXPECT_NEAR(w[1], 1.0, 1e-9);
}

// -------------------------------------------------------------- Sinkhorn --

linalg::Matrix SimpleCost() {
  linalg::Matrix c(2, 2);
  c(0, 0) = 0.0;
  c(0, 1) = 1.0;
  c(1, 0) = 1.0;
  c(1, 1) = 0.0;
  return c;
}

TEST(SinkhornTest, ClassicMatchesMarginals) {
  SinkhornOptions opts;
  opts.epsilon = 0.05;
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto r = RunSinkhorn(SimpleCost(), p, q, opts).value();
  EXPECT_TRUE(r.converged);
  const auto rows = r.plan.RowSums();
  const auto cols = r.plan.ColSums();
  EXPECT_NEAR(rows[0], 0.7, 1e-6);
  EXPECT_NEAR(cols[1], 0.6, 1e-6);
}

TEST(SinkhornTest, CostApproachesExactOtAsEpsilonShrinks) {
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  SinkhornOptions tight;
  tight.epsilon = 0.01;
  SinkhornOptions loose;
  loose.epsilon = 1.0;
  const double cost_tight =
      RunSinkhorn(SimpleCost(), p, q, tight)->transport_cost;
  const double cost_loose =
      RunSinkhorn(SimpleCost(), p, q, loose)->transport_cost;
  // Exact OT cost is 0.3 (see lp_test); entropic smoothing inflates it.
  EXPECT_NEAR(cost_tight, 0.3, 0.02);
  EXPECT_GT(cost_loose, cost_tight);
}

TEST(SinkhornTest, HigherEpsilonSpreadsThePlan) {
  // Fig. 1's qualitative claim: larger regularization -> higher entropy.
  linalg::Vector p(std::vector<double>{0.5, 0.5});
  linalg::Vector q(std::vector<double>{0.5, 0.5});
  SinkhornOptions sharp;
  sharp.epsilon = 0.02;
  SinkhornOptions smooth;
  smooth.epsilon = 2.0;
  const auto r1 = RunSinkhorn(SimpleCost(), p, q, sharp).value();
  const auto r2 = RunSinkhorn(SimpleCost(), p, q, smooth).value();
  EXPECT_GT(PlanEntropy(r2.plan), PlanEntropy(r1.plan));
}

TEST(SinkhornTest, RelaxedModeRunsAndStaysClose) {
  SinkhornOptions opts;
  opts.epsilon = 0.05;
  opts.relaxed = true;
  opts.lambda = 100.0;
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto r = RunSinkhorn(SimpleCost(), p, q, opts).value();
  const auto rows = r.plan.RowSums();
  // Relaxed marginals approximately match for large lambda.
  EXPECT_NEAR(rows[0], 0.7, 0.05);
}

TEST(SinkhornTest, RelaxedSmallLambdaLoosensMarginals) {
  SinkhornOptions strict;
  strict.epsilon = 0.05;
  strict.relaxed = true;
  strict.lambda = 1000.0;
  SinkhornOptions loose = strict;
  loose.lambda = 0.1;
  linalg::Vector p(std::vector<double>{0.9, 0.1});
  linalg::Vector q(std::vector<double>{0.1, 0.9});
  const auto rs = RunSinkhorn(SimpleCost(), p, q, strict).value();
  const auto rl = RunSinkhorn(SimpleCost(), p, q, loose).value();
  const double err_s = std::fabs(rs.plan.RowSums()[0] - 0.9);
  const double err_l = std::fabs(rl.plan.RowSums()[0] - 0.9);
  EXPECT_LT(err_s, err_l);
}

TEST(SinkhornTest, WarmStartReducesIterations) {
  SinkhornOptions opts;
  opts.epsilon = 0.05;
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto cold = RunSinkhorn(SimpleCost(), p, q, opts).value();
  // Warm-start from the converged scalings of a nearby problem.
  linalg::Vector q2(std::vector<double>{0.41, 0.59});
  const auto warm =
      RunSinkhorn(SimpleCost(), p, q2, opts, &cold.u, &cold.v).value();
  const auto cold2 = RunSinkhorn(SimpleCost(), p, q2, opts).value();
  EXPECT_LE(warm.iterations, cold2.iterations);
}

TEST(SinkhornTest, RejectsBadInputs) {
  SinkhornOptions opts;
  linalg::Vector p(std::vector<double>{1.0});
  linalg::Vector q(std::vector<double>{0.5, 0.5});
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());
  opts.epsilon = -1.0;
  linalg::Vector p2(std::vector<double>{0.5, 0.5});
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p2, q, opts).ok());
}

TEST(SinkhornTest, RejectsZeroMaxIterationsAndNonPositiveTolerance) {
  // Regression for the silent-options bug: max_iterations == 0 used to
  // return the unsolved cold-start scalings as a "converged: false"
  // result, and tolerance <= 0 burned the full budget on a threshold
  // that can never be met. Both are loud InvalidArguments now.
  linalg::Vector p(std::vector<double>{0.5, 0.5});
  linalg::Vector q(std::vector<double>{0.5, 0.5});
  SinkhornOptions opts;
  opts.max_iterations = 0;
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());
  EXPECT_FALSE(RunSinkhornSparse(SimpleCost(), p, q, opts, 1e-9).ok());

  opts = SinkhornOptions{};
  opts.tolerance = 0.0;
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());
  opts.tolerance = -1e-6;
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());
  opts.tolerance = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());
}

TEST(SinkhornTest, RejectsMalformedEpsilonSchedule) {
  linalg::Vector p(std::vector<double>{0.5, 0.5});
  linalg::Vector q(std::vector<double>{0.5, 0.5});
  SinkhornOptions opts;
  opts.epsilon = 0.05;

  opts.epsilon_schedule.initial_epsilon = 0.05;  // must EXCEED the final ε
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());

  opts.epsilon_schedule.initial_epsilon = 0.4;
  opts.epsilon_schedule.decay = 1.0;  // not in (0, 1)
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());
  opts.epsilon_schedule.decay = 0.0;
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());

  opts.epsilon_schedule.decay = 0.5;
  opts.epsilon_schedule.stage_tolerance = 0.0;
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());

  opts.epsilon_schedule.stage_tolerance = 1e-3;
  opts.epsilon_schedule.stage_max_iterations = 0;
  EXPECT_FALSE(RunSinkhorn(SimpleCost(), p, q, opts).ok());

  // A well-formed schedule with the same endpoints solves fine.
  opts.epsilon_schedule.stage_max_iterations = 100;
  EXPECT_TRUE(RunSinkhorn(SimpleCost(), p, q, opts).ok());
}

TEST(SinkhornAnnealTest, StagesRecordedAndPlanStillMatchesMarginals) {
  SinkhornOptions opts;
  opts.epsilon = 0.05;
  opts.epsilon_schedule.initial_epsilon = 0.2;
  opts.epsilon_schedule.decay = 0.5;
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto r = RunSinkhorn(SimpleCost(), p, q, opts).value();
  EXPECT_TRUE(r.converged);
  // The chain 0.2 → 0.1 → (final 0.05): two stages before the final solve.
  ASSERT_EQ(r.anneal_stages.size(), 2u);
  EXPECT_NEAR(r.anneal_stages[0].epsilon, 0.2, 1e-12);
  EXPECT_NEAR(r.anneal_stages[1].epsilon, 0.1, 1e-12);
  for (const EpsilonAnnealStage& s : r.anneal_stages) {
    EXPECT_GT(s.iterations, 0u);
  }
  const auto rows = r.plan.RowSums();
  const auto cols = r.plan.ColSums();
  EXPECT_NEAR(rows[0], 0.7, 1e-6);
  EXPECT_NEAR(cols[1], 0.6, 1e-6);
  // Same optimum as the fixed-ε solve: annealing changes the path, not
  // the destination.
  SinkhornOptions fixed = opts;
  fixed.epsilon_schedule = EpsilonSchedule{};
  const auto rf = RunSinkhorn(SimpleCost(), p, q, fixed).value();
  EXPECT_NEAR(r.transport_cost, rf.transport_cost, 1e-6);
}

TEST(SinkhornAnnealTest, ExplicitWarmStartSuppressesStages) {
  // Precedence: a caller-provided warm start is already warm — the
  // schedule must not burn stage iterations in front of it.
  SinkhornOptions opts;
  opts.epsilon = 0.05;
  opts.epsilon_schedule.initial_epsilon = 0.2;
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto base = RunSinkhorn(SimpleCost(), p, q, opts).value();
  const auto warm =
      RunSinkhorn(SimpleCost(), p, q, opts, &base.u, &base.v).value();
  EXPECT_TRUE(warm.anneal_stages.empty());
  EXPECT_LE(warm.iterations, base.iterations);
}

TEST(SinkhornAnnealTest, SparseAndLogDomainAnnealMatchFixedEpsilon) {
  linalg::Matrix cost(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      const double d = static_cast<double>(i) - static_cast<double>(j);
      cost(i, j) = d * d / 6.0;
    }
  }
  linalg::Vector p(6, 1.0 / 6), q(6);
  for (size_t i = 0; i < 6; ++i) q[i] = (i + 1) / 21.0;

  for (const bool log_domain : {false, true}) {
    SinkhornOptions opts;
    opts.epsilon = 0.05;
    opts.log_domain = log_domain;
    opts.relaxed = true;  // truncation under-serves columns legitimately
    opts.epsilon_schedule.initial_epsilon = 0.2;
    const auto annealed =
        RunSinkhornSparse(cost, p, q, opts, /*kernel_cutoff=*/1e-8).value();
    EXPECT_FALSE(annealed.anneal_stages.empty()) << "log=" << log_domain;
    SinkhornOptions fixed = opts;
    fixed.epsilon_schedule = EpsilonSchedule{};
    const auto cold =
        RunSinkhornSparse(cost, p, q, fixed, /*kernel_cutoff=*/1e-8).value();
    EXPECT_NEAR(annealed.transport_cost, cold.transport_cost, 1e-6)
        << "log=" << log_domain;
  }
}

TEST(SinkhornF32Test, AnnealedF32MatchesF64Optimum) {
  // The two tentpole features composed: an annealed f32 solve lands on
  // the same optimum as annealed f64, within the kernel-rounding
  // envelope, and records the same stage structure.
  linalg::Matrix cost(8, 8);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      const double d = (static_cast<double>(i) - static_cast<double>(j)) / 8;
      cost(i, j) = d * d;
    }
  }
  linalg::Vector p(8, 0.125), q(8);
  for (size_t i = 0; i < 8; ++i) q[i] = (i + 1) / 36.0;

  SinkhornOptions f64o;
  f64o.epsilon = 0.02;
  f64o.num_threads = 1;
  f64o.epsilon_schedule.initial_epsilon = 0.08;
  SinkhornOptions f32o = f64o;
  f32o.precision = linalg::Precision::kFloat32;

  const auto rd = RunSinkhorn(cost, p, q, f64o).value();
  const auto rf = RunSinkhorn(cost, p, q, f32o).value();
  EXPECT_TRUE(rd.converged);
  EXPECT_TRUE(rf.converged);
  ASSERT_EQ(rd.anneal_stages.size(), rf.anneal_stages.size());
  EXPECT_NEAR(rf.transport_cost, rd.transport_cost, 1e-5);
}

TEST(SinkhornTest, PlanEntropyOfPointMass) {
  linalg::Matrix plan(2, 2, 0.0);
  plan(0, 0) = 1.0;
  EXPECT_NEAR(PlanEntropy(plan), 0.0, 1e-12);
}

// ------------------------------------------------------------------ Plan --

TEST(PlanTest, ConditionalRowNormalizes) {
  const prob::Domain dom = prob::Domain::FromCardinalities({2, 2});
  linalg::Matrix m(1, 4, 0.0);
  m(0, 1) = 0.2;
  m(0, 3) = 0.6;
  TransportPlan plan(dom, {1}, {0, 1, 2, 3}, m);
  const auto cond = plan.ConditionalRow(0);
  EXPECT_NEAR(cond[1], 0.25, 1e-12);
  EXPECT_NEAR(cond[3], 0.75, 1e-12);
}

TEST(PlanTest, SampleRepairUnknownCellIsIdentity) {
  const prob::Domain dom = prob::Domain::FromCardinalities({2, 2});
  linalg::Matrix m(1, 4, 0.25);
  TransportPlan plan(dom, {1}, {0, 1, 2, 3}, m);
  Rng rng(1);
  EXPECT_EQ(plan.SampleRepair(3, rng), 3u);  // 3 not in row support
}

TEST(PlanTest, MapRepairPicksArgmax) {
  const prob::Domain dom = prob::Domain::FromCardinalities({4});
  linalg::Matrix m(1, 4, 0.0);
  m(0, 2) = 0.9;
  m(0, 0) = 0.1;
  TransportPlan plan(dom, {0}, {0, 1, 2, 3}, m);
  EXPECT_EQ(plan.MapRepair(0), 2u);
}

TEST(PlanTest, SampleRepairFollowsConditional) {
  const prob::Domain dom = prob::Domain::FromCardinalities({4});
  linalg::Matrix m(1, 4, 0.0);
  m(0, 1) = 0.5;
  m(0, 2) = 0.5;
  TransportPlan plan(dom, {0}, {0, 1, 2, 3}, m);
  Rng rng(7);
  int count1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const size_t out = plan.SampleRepair(0, rng);
    ASSERT_TRUE(out == 1 || out == 2);
    if (out == 1) ++count1;
  }
  EXPECT_NEAR(count1 / static_cast<double>(n), 0.5, 0.03);
}

TEST(PlanTest, MasslessRowIsIdentity) {
  const prob::Domain dom = prob::Domain::FromCardinalities({4});
  linalg::Matrix m(1, 4, 0.0);
  TransportPlan plan(dom, {0}, {0, 1, 2, 3}, m);
  Rng rng(9);
  EXPECT_EQ(plan.SampleRepair(0, rng), 0u);
  EXPECT_EQ(plan.MapRepair(0), 0u);
}

// ----------------------------------------------------------------- Exact --

TEST(ExactOtTest, ZeroForIdenticalDistributions) {
  const prob::Domain dom = prob::Domain::FromCardinalities({2, 2});
  auto p = prob::JointDistribution::Uniform(dom);
  EuclideanCost cost(2);
  EXPECT_NEAR(ExactOtDistance(p, p, cost).value(), 0.0, 1e-9);
}

TEST(ExactOtTest, MatchesHandComputedValue) {
  const prob::Domain dom = prob::Domain::FromCardinalities({2});
  prob::JointDistribution p(dom), q(dom);
  p[0] = 1.0;
  q[0] = 0.4;
  q[1] = 0.6;
  EuclideanCost cost(1);
  // Move 0.6 mass a distance of 1.
  EXPECT_NEAR(ExactOtDistance(p, q, cost).value(), 0.6, 1e-9);
}

TEST(ExactOtTest, SymmetricForMetricCosts) {
  const prob::Domain dom = prob::Domain::FromCardinalities({3});
  prob::JointDistribution p(dom), q(dom);
  p[0] = 0.5;
  p[2] = 0.5;
  q[1] = 1.0;
  EuclideanCost cost(1);
  const double pq = ExactOtDistance(p, q, cost).value();
  const double qp = ExactOtDistance(q, p, cost).value();
  EXPECT_NEAR(pq, qp, 1e-9);
  EXPECT_NEAR(pq, 1.0, 1e-9);
}

TEST(ExactOtTest, RejectsDomainMismatchAndZeroMeasure) {
  const prob::Domain d1 = prob::Domain::FromCardinalities({2});
  const prob::Domain d2 = prob::Domain::FromCardinalities({3});
  prob::JointDistribution p(d1), q(d2);
  EuclideanCost cost(1);
  EXPECT_FALSE(ExactOtDistance(p, q, cost).ok());
  prob::JointDistribution z1(d1), z2(d1);
  EXPECT_FALSE(ExactOtDistance(z1, z2, cost).ok());
}

TEST(ExactOtTest, RejectsNonFiniteCostWithIndexedMessage) {
  // A NaN cost entry must be caught up front with the same row/col-indexed
  // InvalidArgument the Sinkhorn path produces — not propagate into a NaN
  // distance or a silently wrong plan. Both marginals have full support
  // here, so support row/col ids coincide with encoded cell ids.
  const prob::Domain dom = prob::Domain::FromCardinalities({2, 2});
  auto p = prob::JointDistribution::Uniform(dom);
  prob::JointDistribution q(dom);
  q[0] = 0.1;
  q[1] = 0.4;
  q[2] = 0.3;
  q[3] = 0.2;
  LambdaCost cost([&dom](const std::vector<int>& a, const std::vector<int>& b) {
    if (dom.Encode(a) == 2 && dom.Encode(b) == 1) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return 1.0;
  });
  const auto r = ExactOtDistance(p, q, cost);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("ExactOtDistance"), std::string::npos);
  EXPECT_NE(r.status().message().find("cost(2, 1)"), std::string::npos);
  EXPECT_NE(r.status().message().find("not finite"), std::string::npos);
}

TEST(ExactOtTest, MatchesLogDomainSinkhornAsEpsilonVanishes) {
  // The paper-figure gate in miniature: the LP-exact distance and a sharply
  // regularized log-domain Sinkhorn solve must agree as ε → 0 (entropic
  // bias vanishes; the log domain keeps the tiny-ε kernel from underflowing).
  const prob::Domain dom = prob::Domain::FromCardinalities({3, 3});
  prob::JointDistribution p(dom), q(dom);
  for (size_t i = 0; i < dom.TotalSize(); ++i) {
    p[i] = 1.0 + static_cast<double>((3 * i + 1) % 7);
    q[i] = 1.0 + static_cast<double>((5 * i + 2) % 5);
  }
  p.Normalize();
  q.Normalize();
  EuclideanCost cost(2);
  const double exact = ExactOtDistance(p, q, cost).value();
  ASSERT_GT(exact, 0.0);

  const linalg::Matrix cm = BuildCostMatrix(dom, cost);
  double mean_cost = 0.0;
  for (const double c : cm.data()) mean_cost += c;
  mean_cost /= static_cast<double>(cm.size());

  SinkhornOptions opts;
  opts.log_domain = true;
  opts.epsilon = 1e-3 * mean_cost;
  opts.max_iterations = 50000;
  opts.tolerance = 1e-11;
  linalg::Vector pv(p.size()), qv(q.size());
  for (size_t i = 0; i < p.size(); ++i) pv[i] = p[i];
  for (size_t i = 0; i < q.size(); ++i) qv[i] = q[i];
  const auto r = RunSinkhorn(cm, pv, qv, opts).value();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.transport_cost, exact,
              std::max(0.02 * exact, 2e-3 * mean_cost));
}

}  // namespace
}  // namespace otclean::ot
