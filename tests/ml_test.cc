#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/features.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace otclean::ml {
namespace {

/// A learnable binary task: label = x XOR-ish function of two features plus
/// noise.
dataset::Table MakeLearnableTable(size_t n = 800, uint64_t seed = 5,
                                  double noise = 0.1) {
  std::vector<dataset::Column> cols = {datagen::MakeColumn("f0", 3),
                                       datagen::MakeColumn("f1", 4),
                                       datagen::MakeColumn("label", 2)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int f0 = static_cast<int>(rng.NextUint64Below(3));
    const int f1 = static_cast<int>(rng.NextUint64Below(4));
    int label = (f0 + f1 >= 3) ? 1 : 0;
    if (rng.NextBernoulli(noise)) label = 1 - label;
    EXPECT_TRUE(t.AppendRow({f0, f1, label}).ok());
  }
  return t;
}

// -------------------------------------------------------------- Features --

TEST(FeaturesTest, OneHotWidthAndEncoding) {
  const auto t = MakeLearnableTable(10);
  OneHotEncoder enc(t.schema(), {0, 1});
  EXPECT_EQ(enc.width(), 7u);
  const auto x = enc.Encode({2, 1, 0});
  EXPECT_DOUBLE_EQ(x[2], 1.0);  // f0 = 2
  EXPECT_DOUBLE_EQ(x[3 + 1], 1.0);  // f1 = 1
  double sum = 0.0;
  for (double v : x) sum += v;
  EXPECT_DOUBLE_EQ(sum, 2.0);
}

TEST(FeaturesTest, OneHotMissingIsAllZeroBlock) {
  const auto t = MakeLearnableTable(10);
  OneHotEncoder enc(t.schema(), {0, 1});
  const auto x = enc.Encode({dataset::kMissing, 0, 0});
  double sum = 0.0;
  for (double v : x) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);  // only f1 contributes
}

TEST(FeaturesTest, BinaryLabelsValidates) {
  const auto t = MakeLearnableTable(10);
  EXPECT_TRUE(BinaryLabels(t, 2).ok());
  EXPECT_FALSE(BinaryLabels(t, 0).ok());   // cardinality 3
  EXPECT_FALSE(BinaryLabels(t, 9).ok());   // out of range
}

// --------------------------------------------------------------- Metrics --

TEST(MetricsTest, AucPerfectRanking) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(Auc({1, 1, 0, 0}, {0.1, 0.2, 0.8, 0.9}), 0.0);
}

TEST(MetricsTest, AucRandomTiesAtHalf) {
  EXPECT_DOUBLE_EQ(Auc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(MetricsTest, AucSingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({1, 1}, {0.1, 0.9}), 0.5);
}

TEST(MetricsTest, AucHandlesPartialOverlap) {
  // One inversion out of four pairs -> 0.75.
  EXPECT_DOUBLE_EQ(Auc({0, 1, 0, 1}, {0.1, 0.2, 0.3, 0.4}), 0.75);
}

TEST(MetricsTest, F1AndAccuracy) {
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<double> s = {0.9, 0.2, 0.8, 0.1};
  // tp=1, fp=1, fn=1 -> F1 = 2/4.
  EXPECT_DOUBLE_EQ(F1Score(y, s), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy(y, s), 0.5);
}

TEST(MetricsTest, F1ZeroWhenNoPositivePredictionsOrLabels) {
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0.1, 0.2}), 0.0);
}

// ---------------------------------------------------------------- Models --

template <typename Model>
double TrainedAuc(Model&& model, const dataset::Table& table) {
  EXPECT_TRUE(model.Fit(table, 2, {0, 1}).ok());
  const auto labels = BinaryLabels(table, 2).value();
  const auto scores = model.PredictTable(table);
  return Auc(labels, scores);
}

TEST(LogisticRegressionTest, LearnsSeparableTask) {
  const auto t = MakeLearnableTable(800, 6, 0.05);
  EXPECT_GT(TrainedAuc(LogisticRegression(), t), 0.9);
}

TEST(NaiveBayesTest, LearnsSeparableTask) {
  const auto t = MakeLearnableTable(800, 7, 0.05);
  EXPECT_GT(TrainedAuc(NaiveBayes(), t), 0.85);
}

TEST(DecisionTreeTest, LearnsSeparableTask) {
  const auto t = MakeLearnableTable(800, 8, 0.05);
  EXPECT_GT(TrainedAuc(DecisionTree(), t), 0.9);
}

TEST(RandomForestTest, LearnsSeparableTask) {
  const auto t = MakeLearnableTable(800, 9, 0.05);
  EXPECT_GT(TrainedAuc(RandomForest(), t), 0.9);
}

TEST(ModelsTest, PredictBeforeFitReturnsHalf) {
  LogisticRegression lr;
  NaiveBayes nb;
  DecisionTree dt;
  RandomForest rf;
  const std::vector<int> row = {0, 0, 0};
  EXPECT_DOUBLE_EQ(lr.PredictProb(row), 0.5);
  EXPECT_DOUBLE_EQ(nb.PredictProb(row), 0.5);
  EXPECT_DOUBLE_EQ(dt.PredictProb(row), 0.5);
  EXPECT_DOUBLE_EQ(rf.PredictProb(row), 0.5);
}

TEST(ModelsTest, FitRejectsNonBinaryLabel) {
  const auto t = MakeLearnableTable(50);
  LogisticRegression lr;
  EXPECT_FALSE(lr.Fit(t, 0, {1, 2}).ok());
  NaiveBayes nb;
  EXPECT_FALSE(nb.Fit(t, 0, {1, 2}).ok());
  DecisionTree dt;
  EXPECT_FALSE(dt.Fit(t, 0, {1, 2}).ok());
}

TEST(ModelsTest, ToleratesMissingFeaturesAtPredictTime) {
  const auto t = MakeLearnableTable(400, 10, 0.05);
  NaiveBayes nb;
  ASSERT_TRUE(nb.Fit(t, 2, {0, 1}).ok());
  const double p = nb.PredictProb({dataset::kMissing, dataset::kMissing, 0});
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);

  DecisionTree dt;
  ASSERT_TRUE(dt.Fit(t, 2, {0, 1}).ok());
  const double q = dt.PredictProb({dataset::kMissing, 1, 0});
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
}

TEST(DecisionTreeTest, PureLeafProbabilitiesAreSmoothed) {
  const auto t = MakeLearnableTable(200, 11, 0.0);
  DecisionTree dt;
  ASSERT_TRUE(dt.Fit(t, 2, {0, 1}).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const double p = dt.PredictProb(t.Row(r));
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(DecisionTreeTest, NodeCountGrowsWithDepth) {
  const auto t = MakeLearnableTable(500, 12, 0.1);
  DecisionTree::Options shallow;
  shallow.max_depth = 1;
  DecisionTree::Options deep;
  deep.max_depth = 6;
  DecisionTree a(shallow), b(deep);
  ASSERT_TRUE(a.Fit(t, 2, {0, 1}).ok());
  ASSERT_TRUE(b.Fit(t, 2, {0, 1}).ok());
  EXPECT_LE(a.NodeCount(), b.NodeCount());
}

// ------------------------------------------------------ Cross-validation --

TEST(CrossValidationTest, StratifiedFoldsBalanceClasses) {
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) labels.push_back(i < 20 ? 1 : 0);
  Rng rng(13);
  const auto folds = StratifiedFolds(labels, 5, rng);
  std::vector<int> pos_per_fold(5, 0);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) ++pos_per_fold[folds[i]];
  }
  for (int c : pos_per_fold) EXPECT_EQ(c, 4);
}

TEST(CrossValidationTest, ProducesReasonableAuc) {
  const auto t = MakeLearnableTable(600, 14, 0.05);
  const auto cv =
      CrossValidate(t, 2, {0, 1},
                    [] { return std::make_unique<LogisticRegression>(); })
          .value();
  EXPECT_GT(cv.mean_auc, 0.85);
  EXPECT_EQ(cv.fold_auc.size(), 5u);
  EXPECT_EQ(cv.oof_scores.size(), t.num_rows());
}

TEST(CrossValidationTest, TransformHookIsApplied) {
  const auto t = MakeLearnableTable(300, 15, 0.05);
  size_t calls = 0;
  const auto cv = CrossValidate(
      t, 2, {0, 1}, [] { return std::make_unique<NaiveBayes>(); },
      CrossValidationOptions{},
      [&calls](const dataset::Table& train) -> Result<dataset::Table> {
        ++calls;
        return train;
      });
  ASSERT_TRUE(cv.ok());
  EXPECT_EQ(calls, 5u);
}

TEST(CrossValidationTest, RejectsSingleFold) {
  const auto t = MakeLearnableTable(100);
  CrossValidationOptions opts;
  opts.num_folds = 1;
  EXPECT_FALSE(CrossValidate(t, 2, {0, 1},
                             [] { return std::make_unique<NaiveBayes>(); },
                             opts)
                   .ok());
}

TEST(CrossValidationTest, TrainAndEvaluateHoldout) {
  const auto train = MakeLearnableTable(600, 16, 0.05);
  const auto test = MakeLearnableTable(200, 17, 0.05);
  const auto r = TrainAndEvaluate(train, test, 2, {0, 1}, [] {
                   return std::make_unique<LogisticRegression>();
                 }).value();
  EXPECT_GT(r.auc, 0.85);
  EXPECT_GT(r.accuracy, 0.7);
}

TEST(CrossValidationTest, AllFeaturesExceptHelper) {
  const auto t = MakeLearnableTable(10);
  EXPECT_EQ(AllFeaturesExcept(t.schema(), 2), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(AllFeaturesExcept(t.schema(), 2, {0}), (std::vector<size_t>{1}));
}

}  // namespace
}  // namespace otclean::ml
