#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cleaning/imputer.h"
#include "cleaning/missingness.h"
#include "cleaning/noise.h"
#include "core/repair.h"
#include "datagen/datasets.h"
#include "fairness/capuchin.h"
#include "fairness/metrics.h"
#include "metric/mlkr.h"
#include "ml/cross_validation.h"
#include "ml/logistic_regression.h"
#include "ot/cost.h"

namespace otclean {
namespace {

/// End-to-end fairness pipeline (the Fig. 4 flow, small scale): cleaning
/// the training data with OTClean should reduce |log ROD| without
/// destroying AUC.
TEST(IntegrationTest, FairnessPipelineReducesRod) {
  const auto bundle = datagen::MakeCompas(2500, 900).value();
  const auto& t = bundle.table;
  const size_t label = t.schema().ColumnIndex(bundle.label_col).value();
  const size_t sensitive =
      t.schema().ColumnIndex(bundle.sensitive_col).value();
  std::vector<size_t> admissible;
  for (const auto& name : bundle.admissible_cols) {
    admissible.push_back(t.schema().ColumnIndex(name).value());
  }
  std::vector<size_t> features;
  for (const auto& name : bundle.admissible_cols) {
    features.push_back(t.schema().ColumnIndex(name).value());
  }
  for (const auto& name : bundle.inadmissible_cols) {
    features.push_back(t.schema().ColumnIndex(name).value());
  }

  const auto factory = [] { return std::make_unique<ml::LogisticRegression>(); };
  ml::CrossValidationOptions cv_opts;
  cv_opts.num_folds = 3;

  // Baseline: no repair.
  const auto cv_dirty =
      ml::CrossValidate(t, label, features, factory, cv_opts).value();

  // OTClean repair of each training fold.
  core::RepairOptions repair_opts;
  repair_opts.fast.epsilon = 0.08;
  const auto transform =
      [&](const dataset::Table& train) -> Result<dataset::Table> {
    OTCLEAN_ASSIGN_OR_RETURN(
        core::RepairReport report,
        core::RepairTable(train, bundle.constraint, repair_opts));
    return report.repaired;
  };
  const auto cv_clean =
      ml::CrossValidate(t, label, features, factory, cv_opts, transform)
          .value();

  fairness::FairnessInputs in_dirty;
  in_dirty.table = &t;
  in_dirty.scores = cv_dirty.oof_scores;
  in_dirty.sensitive_col = sensitive;
  in_dirty.admissible_cols = admissible;
  fairness::FairnessInputs in_clean = in_dirty;
  in_clean.scores = cv_clean.oof_scores;

  const double rod_dirty = std::fabs(fairness::LogRod(in_dirty).value());
  const double rod_clean = std::fabs(fairness::LogRod(in_clean).value());

  EXPECT_LT(rod_clean, rod_dirty);
  EXPECT_GT(cv_clean.mean_auc, 0.5);
  // AUC should not collapse relative to the dirty baseline.
  EXPECT_GT(cv_clean.mean_auc, cv_dirty.mean_auc - 0.15);
}

/// End-to-end attribute-noise pipeline (the Fig. 6 flow): models trained on
/// noisy data lose AUC on clean test data; OTClean repair recovers much of
/// it.
TEST(IntegrationTest, AttributeNoisePipelineRecoversAuc) {
  const auto bundle = datagen::MakeCar(2500, 901).value();
  const auto& clean = bundle.table;
  const size_t label = clean.schema().ColumnIndex(bundle.label_col).value();
  const auto features = ml::AllFeaturesExcept(clean.schema(), label);

  // Split into train/test halves.
  std::vector<size_t> train_rows, test_rows;
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    (r % 2 == 0 ? train_rows : test_rows).push_back(r);
  }
  const auto train_clean = clean.SelectRows(train_rows);
  const auto test = clean.SelectRows(test_rows);

  cleaning::AttributeNoiseOptions noise;
  noise.target_col = clean.schema().ColumnIndex("doors").value();
  noise.driver_col = label;
  noise.rate = 0.8;
  noise.seed = 902;
  const auto train_dirty =
      cleaning::InjectAttributeNoise(train_clean, noise).value();

  const auto factory = [] { return std::make_unique<ml::LogisticRegression>(); };

  const double auc_clean =
      ml::TrainAndEvaluate(train_clean, test, label, features, factory)
          ->auc;
  const double auc_dirty =
      ml::TrainAndEvaluate(train_dirty, test, label, features, factory)
          ->auc;

  core::RepairOptions opts;
  const auto repaired =
      core::RepairTable(train_dirty, bundle.constraint, opts).value();
  const double auc_otclean =
      ml::TrainAndEvaluate(repaired.repaired, test, label, features, factory)
          ->auc;

  // Noise hurts; repair recovers at least part of the gap.
  EXPECT_LT(auc_dirty, auc_clean);
  EXPECT_GT(auc_otclean, auc_dirty - 0.02);
}

/// Imputation + OTClean pipeline (Figs. 7/8 flow): MF imputation under MAR
/// noise introduces spurious correlation; OTClean post-processing reduces
/// the constraint violation.
TEST(IntegrationTest, ImputationPipelineReducesCmi) {
  const auto bundle = datagen::MakeBoston(2000, 903).value();
  const auto& clean = bundle.table;
  cleaning::MissingnessOptions miss;
  miss.target_col = clean.schema().ColumnIndex("B").value();
  miss.driver_col = clean.schema().ColumnIndex("medv").value();
  miss.mechanism = cleaning::MissingMechanism::kMar;
  miss.rate = 0.5;
  miss.seed = 904;
  const auto dirty = cleaning::InjectMissingness(clean, miss).value();

  cleaning::MostFrequentImputer mf;
  const auto imputed = mf.Impute(dirty).value();
  const double cmi_imputed =
      core::TableCmi(imputed, bundle.constraint).value();

  const auto repaired =
      core::RepairTable(imputed, bundle.constraint).value();
  EXPECT_LT(repaired.final_cmi, cmi_imputed + 1e-9);
  EXPECT_LT(repaired.target_cmi, 1e-6);
}

/// MLKR-learned cost (C2) plugs into the repair pipeline end to end.
TEST(IntegrationTest, MlkrCostPipeline) {
  const auto bundle = datagen::MakeCompas(1200, 905).value();
  const auto& t = bundle.table;
  const size_t label = t.schema().ColumnIndex(bundle.label_col).value();
  const auto u_cols = bundle.constraint.ResolveColumns(t.schema()).value();

  metric::MlkrOptions mlkr_opts;
  mlkr_opts.max_rows = 120;
  mlkr_opts.epochs = 20;
  const auto mlkr =
      metric::LearnMlkrWeights(t, label, u_cols, mlkr_opts).value();
  ot::WeightedEuclideanCost cost(mlkr.weights);

  core::OtCleanRepairer repairer(bundle.constraint);
  ASSERT_TRUE(repairer.Fit(t, &cost).ok());
  Rng rng(906);
  const auto repaired = repairer.Apply(t, rng).value();
  EXPECT_LT(core::TableCmi(repaired, bundle.constraint).value(),
            core::TableCmi(t, bundle.constraint).value());
}

/// OTClean vs Capuchin on the same data: both reduce CMI; OTClean's
/// distribution stays closer to the original (the paper's headline claim).
TEST(IntegrationTest, OtcleanPreservesDistributionBetterThanCapuchin) {
  const auto bundle = datagen::MakeCompas(3000, 907).value();
  const auto& t = bundle.table;
  const auto u_cols = bundle.constraint.ResolveColumns(t.schema()).value();

  const auto ot_repair = core::RepairTable(t, bundle.constraint).value();
  fairness::CapuchinOptions cap_opts;
  cap_opts.method = fairness::CapuchinMethod::kIndependentCoupling;
  const auto cap_repair =
      fairness::CapuchinRepair(t, bundle.constraint, cap_opts).value();

  const auto p0 = t.Empirical(u_cols);
  const auto p_ot = ot_repair.repaired.Empirical(u_cols);
  const auto p_cap = cap_repair.Empirical(u_cols);
  const double tv_ot = p0.TotalVariation(p_ot);
  const double tv_cap = p0.TotalVariation(p_cap);
  // OT explicitly minimizes movement; Capuchin resamples U wholesale. OT
  // should distort no more than Capuchin (allow slack for sampling noise).
  EXPECT_LE(tv_ot, tv_cap + 0.05);
}

}  // namespace
}  // namespace otclean
