#include "core/repair_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "common/cancellation.h"
#include "datagen/synthetic.h"

namespace otclean::core {
namespace {

dataset::Table MakeViolatingTable(uint64_t seed, size_t rows = 400,
                                  size_t num_w_attrs = 0) {
  datagen::ScalingDatasetOptions opts;
  opts.num_rows = rows;
  opts.num_z_attrs = 1;
  opts.z_card = 2;
  opts.num_w_attrs = num_w_attrs;
  opts.w_card = 2;
  opts.violation = 0.7;
  opts.seed = seed;
  return datagen::MakeScalingDataset(opts).value();
}

CiConstraint XyGivenZ() { return CiConstraint({"x"}, {"y"}, {"z0"}); }


/// A small mixed batch: two tables, varied options, one multi-constraint
/// job — enough shape diversity that scheduling bugs cannot hide behind
/// identical jobs.
std::vector<RepairJob> MakeBatch(const dataset::Table& t1,
                                 const dataset::Table& t2) {
  std::vector<RepairJob> jobs;
  {
    RepairJob j;
    j.table = &t1;
    j.constraints = {XyGivenZ()};
    jobs.push_back(j);
  }
  {
    RepairJob j;
    j.table = &t2;
    j.constraints = {XyGivenZ()};
    j.options.fast.epsilon = 0.05;
    j.options.seed = 7;
    jobs.push_back(j);
  }
  {
    RepairJob j;  // multi-constraint over the union of attributes
    j.table = &t2;
    j.constraints = {XyGivenZ(), CiConstraint({"x"}, {"w0"})};
    jobs.push_back(j);
  }
  {
    RepairJob j;  // deterministic MAP repairs + truncated sparse kernel
    j.table = &t1;
    j.constraints = {XyGivenZ()};
    j.options.sample_repair = false;
    j.options.fast.kernel_truncation = 1e-12;
    jobs.push_back(j);
  }
  {
    RepairJob j;  // log-domain Sinkhorn
    j.table = &t1;
    j.constraints = {XyGivenZ()};
    j.options.fast.log_domain = true;
    j.options.seed = 99;
    jobs.push_back(j);
  }
  return jobs;
}

void ExpectSameJobResults(const BatchReport& a, const BatchReport& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_TRUE(a.jobs[i].ok()) << i << ": " << a.jobs[i].status().ToString();
    ASSERT_TRUE(b.jobs[i].ok()) << i << ": " << b.jobs[i].status().ToString();
    const RepairReport& ra = *a.jobs[i];
    const RepairReport& rb = *b.jobs[i];
    EXPECT_TRUE(ra.repaired.SameContents(rb.repaired)) << "job " << i;
    EXPECT_EQ(ra.initial_cmi, rb.initial_cmi) << "job " << i;
    EXPECT_EQ(ra.final_cmi, rb.final_cmi) << "job " << i;
    EXPECT_EQ(ra.target_cmi, rb.target_cmi) << "job " << i;
    EXPECT_EQ(ra.transport_cost, rb.transport_cost) << "job " << i;
    EXPECT_EQ(ra.outer_iterations, rb.outer_iterations) << "job " << i;
    EXPECT_EQ(ra.total_sinkhorn_iterations, rb.total_sinkhorn_iterations)
        << "job " << i;
    EXPECT_EQ(ra.plan_nnz, rb.plan_nnz) << "job " << i;
    EXPECT_STREQ(ra.sinkhorn_domain, rb.sinkhorn_domain) << "job " << i;
  }
}

TEST(RepairSchedulerTest, ConcurrentBatchBitIdenticalToSequential) {
  const auto t1 = MakeViolatingTable(21);
  const auto t2 = MakeViolatingTable(22, 500, /*num_w_attrs=*/1);
  const std::vector<RepairJob> jobs = MakeBatch(t1, t2);

  RepairSchedulerOptions sequential;
  sequential.max_concurrent_jobs = 1;
  sequential.pool_threads = 1;
  const BatchReport seq = RepairScheduler(sequential).Run(jobs);

  RepairSchedulerOptions concurrent;
  concurrent.max_concurrent_jobs = 4;
  concurrent.pool_threads = 3;  // all four executors share 3 lanes
  const BatchReport conc = RepairScheduler(concurrent).Run(jobs);

  ExpectSameJobResults(seq, conc);
  EXPECT_EQ(conc.completed_jobs, jobs.size());
  EXPECT_EQ(conc.failed_jobs, 0u);
}

TEST(RepairSchedulerTest, MatchesManuallySeededStandaloneRepairs) {
  // The scheduler's only semantic deltas vs a plain RepairTable call are
  // the derived seed and the shared pool — and the pool must not change
  // results. So job i through the scheduler == RepairTable with
  // DeriveJobSeed(seed, i) applied by hand.
  const auto t1 = MakeViolatingTable(23);
  std::vector<RepairJob> jobs;
  for (uint64_t s : {42u, 7u}) {
    RepairJob j;
    j.table = &t1;
    j.constraints = {XyGivenZ()};
    j.options.seed = s;
    jobs.push_back(j);
  }
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 2;
  opts.pool_threads = 2;
  const BatchReport batch = RepairScheduler(opts).Run(jobs);

  for (size_t i = 0; i < jobs.size(); ++i) {
    RepairOptions manual = jobs[i].options;
    manual.seed = DeriveJobSeed(jobs[i].options.seed, i);
    const auto standalone = RepairTable(t1, XyGivenZ(), manual).value();
    ASSERT_TRUE(batch.jobs[i].ok());
    EXPECT_TRUE(standalone.repaired.SameContents(batch.jobs[i]->repaired));
    EXPECT_EQ(standalone.transport_cost, batch.jobs[i]->transport_cost);
    EXPECT_EQ(standalone.final_cmi, batch.jobs[i]->final_cmi);
  }
}

TEST(RepairSchedulerTest, ExplicitIdsKeepResultsUnderReordering) {
  // With explicit stable ids, shuffling the batch permutes the slots but
  // never changes any job's result: the seed depends on (seed, id) only.
  const auto t1 = MakeViolatingTable(24);
  const auto t2 = MakeViolatingTable(25);
  std::vector<RepairJob> jobs;
  for (uint64_t id : {10u, 11u, 12u}) {
    RepairJob j;
    j.table = id == 11 ? &t2 : &t1;
    j.constraints = {XyGivenZ()};
    j.id = id;
    jobs.push_back(j);
  }
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 3;
  opts.pool_threads = 2;
  const BatchReport forward = RepairScheduler(opts).Run(jobs);

  std::vector<RepairJob> reversed(jobs.rbegin(), jobs.rend());
  const BatchReport backward = RepairScheduler(opts).Run(reversed);

  for (size_t i = 0; i < jobs.size(); ++i) {
    const size_t ri = jobs.size() - 1 - i;
    ASSERT_TRUE(forward.jobs[i].ok());
    ASSERT_TRUE(backward.jobs[ri].ok());
    EXPECT_TRUE(
        forward.jobs[i]->repaired.SameContents(backward.jobs[ri]->repaired));
    EXPECT_EQ(forward.jobs[i]->transport_cost,
              backward.jobs[ri]->transport_cost);
  }
}

TEST(RepairSchedulerTest, DeriveJobSeedIsStableAndCollisionFree) {
  // Stable: the derivation is a pure function of (base_seed, id).
  EXPECT_EQ(DeriveJobSeed(42, 0), DeriveJobSeed(42, 0));
  // Decorrelated: distinct ids (or bases) give distinct seeds, and job 0
  // never degenerates to the bare base seed.
  std::set<uint64_t> seeds;
  for (uint64_t base : {0u, 1u, 42u}) {
    for (uint64_t id = 0; id < 100; ++id) {
      seeds.insert(DeriveJobSeed(base, id));
      EXPECT_NE(DeriveJobSeed(base, id), base);
    }
  }
  EXPECT_EQ(seeds.size(), 300u);
}

TEST(RepairSchedulerTest, FailedJobDoesNotAbortBatch) {
  const auto t1 = MakeViolatingTable(26);
  std::vector<RepairJob> jobs;
  {
    RepairJob j;
    j.table = &t1;
    j.constraints = {XyGivenZ()};
    jobs.push_back(j);
  }
  {
    RepairJob j;  // invalid: multi-constraint + use_saturation=false
    j.table = &t1;
    j.constraints = {XyGivenZ(), CiConstraint({"x"}, {"z0"})};
    j.options.use_saturation = false;
    jobs.push_back(j);
  }
  {
    RepairJob j;  // invalid: no table
    j.constraints = {XyGivenZ()};
    jobs.push_back(j);
  }
  linalg::ThreadPool private_pool(2);
  {
    RepairJob j;  // invalid: brings its own pool (scheduler owns sharing)
    j.table = &t1;
    j.constraints = {XyGivenZ()};
    j.options.fast.thread_pool = &private_pool;
    jobs.push_back(j);
  }
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 3;
  const BatchReport report = RepairScheduler(opts).Run(jobs);
  EXPECT_EQ(report.completed_jobs, 1u);
  EXPECT_EQ(report.failed_jobs, 3u);
  EXPECT_TRUE(report.jobs[0].ok());
  EXPECT_EQ(report.jobs[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(report.jobs[3].status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.jobs[3].status().message().find("thread_pool"),
            std::string::npos);
  EXPECT_EQ(report.jobs[2].status().code(), StatusCode::kInvalidArgument);
}

TEST(RepairSchedulerTest, AggregatesBatchDiagnostics) {
  const auto t1 = MakeViolatingTable(27);
  std::vector<RepairJob> jobs(3);
  for (auto& j : jobs) {
    j.table = &t1;
    j.constraints = {XyGivenZ()};
  }
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 2;
  const BatchReport report = RepairScheduler(opts).Run(jobs);
  ASSERT_EQ(report.completed_jobs, 3u);
  EXPECT_GT(report.jobs_per_second, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  size_t iters = 0, peak = 0;
  for (const auto& r : report.jobs) {
    iters += r->total_sinkhorn_iterations;
    peak = std::max(peak, r->plan_memory_bytes);
  }
  EXPECT_EQ(report.total_sinkhorn_iterations, iters);
  EXPECT_EQ(report.peak_plan_bytes, peak);
  EXPECT_GT(report.peak_plan_bytes, 0u);
}

TEST(RepairSchedulerTest, SerialPoolForcesSerialSolvesWithSameResults) {
  // pool_threads=1 resolves to no shared pool; the scheduler then forces
  // per-job solves serial (instead of letting every executor spawn a
  // private pool) — and thread-count bit-compatibility means results
  // still match a wide-pool run exactly, even for jobs requesting
  // num_threads > 1.
  const auto t1 = MakeViolatingTable(29);
  std::vector<RepairJob> jobs(2);
  for (auto& j : jobs) {
    j.table = &t1;
    j.constraints = {XyGivenZ()};
    j.options.fast.num_threads = 8;
  }
  RepairSchedulerOptions serial;
  serial.max_concurrent_jobs = 2;
  serial.pool_threads = 1;
  RepairScheduler serial_scheduler(serial);
  EXPECT_EQ(serial_scheduler.shared_pool(), nullptr);
  const BatchReport no_pool = serial_scheduler.Run(jobs);

  RepairSchedulerOptions wide;
  wide.max_concurrent_jobs = 2;
  wide.pool_threads = 8;
  RepairScheduler wide_scheduler(wide);
  EXPECT_NE(wide_scheduler.shared_pool(), nullptr);
  const BatchReport pooled = wide_scheduler.Run(jobs);

  ExpectSameJobResults(no_pool, pooled);
}

TEST(RepairSchedulerTest, EmptyBatchIsANoOp) {
  RepairScheduler scheduler;
  const BatchReport report = scheduler.Run({});
  EXPECT_TRUE(report.jobs.empty());
  EXPECT_EQ(report.completed_jobs, 0u);
  EXPECT_EQ(report.failed_jobs, 0u);
}

TEST(RepairSchedulerTest, SchedulerIsReusableAcrossBatches) {
  // One long-lived scheduler (the serving model): pool persists, batches
  // keep their determinism contract run to run.
  const auto t1 = MakeViolatingTable(28);
  RepairJob j;
  j.table = &t1;
  j.constraints = {XyGivenZ()};
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 2;
  opts.pool_threads = 2;
  RepairScheduler scheduler(opts);
  const BatchReport first = scheduler.Run({j, j});
  const BatchReport second = scheduler.Run({j, j});
  ExpectSameJobResults(first, second);
}

// ----------------------------------------------------- Submit/Wait/Cancel --

/// A job whose solve runs for minutes unless stopped: an 864-cell domain
/// and tolerances no iterate meets, so a stop signal is the only fast exit.
struct SlowJobFixture {
  dataset::Table table;
  CiConstraint wide{{"x"}, {"y"}, {"z0", "z1", "z2"}};
  RepairJob job;

  SlowJobFixture() {
    datagen::ScalingDatasetOptions opts;
    opts.num_rows = 1000;
    opts.num_z_attrs = 3;
    opts.z_card = 6;
    opts.violation = 0.7;
    opts.seed = 51;
    table = datagen::MakeScalingDataset(opts).value();
    job.table = &table;
    job.constraints = {wide};
    job.options.fast.max_outer_iterations = 100000;
    job.options.fast.outer_tolerance = 0.0;
    job.options.fast.max_sinkhorn_iterations = 5000;
    job.options.fast.sinkhorn_tolerance = 0.0;
  }
};

TEST(RepairSchedulerLifecycleTest, SubmitWaitServesAndConsumesTickets) {
  const auto t1 = MakeViolatingTable(50);
  RepairJob job;
  job.table = &t1;
  job.constraints = {XyGivenZ()};

  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 2;
  opts.pool_threads = 1;
  RepairScheduler scheduler(opts);

  const Result<JobTicket> ticket = scheduler.Submit(job);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  const Result<RepairReport> r = scheduler.Wait(*ticket);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->total_sinkhorn_iterations, 0u);

  // Wait consumes: the ticket is gone, a second Wait cannot block forever.
  const Result<RepairReport> again = scheduler.Wait(*ticket);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.Cancel(*ticket).code(), StatusCode::kNotFound);
}

TEST(RepairSchedulerLifecycleTest, CancelStopsQueuedAndRunningJobs) {
  SlowJobFixture slow;
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 1;  // one executor: the second job must queue
  opts.pool_threads = 1;
  RepairScheduler scheduler(opts);

  const Result<JobTicket> running = scheduler.Submit(slow.job);
  ASSERT_TRUE(running.ok());
  const Result<JobTicket> queued = scheduler.Submit(slow.job);
  ASSERT_TRUE(queued.ok());

  // The queued job dies at dequeue without spending a solve; the running
  // one aborts at its next cooperative checkpoint.
  ASSERT_TRUE(scheduler.Cancel(*queued).ok());
  ASSERT_TRUE(scheduler.Cancel(*running).ok());

  const Result<RepairReport> queued_result = scheduler.Wait(*queued);
  ASSERT_FALSE(queued_result.ok());
  EXPECT_EQ(queued_result.status().code(), StatusCode::kCancelled);

  const Result<RepairReport> running_result = scheduler.Wait(*running);
  ASSERT_FALSE(running_result.ok());
  EXPECT_EQ(running_result.status().code(), StatusCode::kCancelled);
}

TEST(RepairSchedulerLifecycleTest, DrainAndStopFailsQueuedAndRefusesNewWork) {
  SlowJobFixture slow;
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 1;
  opts.pool_threads = 1;
  RepairScheduler scheduler(opts);

  const Result<JobTicket> running = scheduler.Submit(slow.job);
  ASSERT_TRUE(running.ok());
  const Result<JobTicket> queued = scheduler.Submit(slow.job);
  ASSERT_TRUE(queued.ok());

  // Cancel the in-flight job first so the drain's join is prompt; drain
  // then fails everything still queued without running it.
  ASSERT_TRUE(scheduler.Cancel(*running).ok());
  scheduler.DrainAndStop();

  const Result<RepairReport> queued_result = scheduler.Wait(*queued);
  ASSERT_FALSE(queued_result.ok());
  EXPECT_EQ(queued_result.status().code(), StatusCode::kCancelled);
  EXPECT_NE(queued_result.status().message().find("queued"),
            std::string::npos);

  const Result<JobTicket> refused = scheduler.Submit(slow.job);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RepairSchedulerLifecycleTest, FullQueueRejectsCompetingSubmitters) {
  SlowJobFixture slow;
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 1;
  opts.pool_threads = 1;
  opts.max_queued_jobs = 1;
  RepairScheduler scheduler(opts);

  const Result<JobTicket> running = scheduler.Submit(slow.job);
  ASSERT_TRUE(running.ok());
  // Give the executor time to dequeue the first job so the queue is
  // genuinely empty before the next admission.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const Result<JobTicket> queued = scheduler.Submit(slow.job);
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  const Result<JobTicket> rejected = scheduler.Submit(slow.job);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("queue full"),
            std::string::npos);

  ASSERT_TRUE(scheduler.Cancel(*queued).ok());
  ASSERT_TRUE(scheduler.Cancel(*running).ok());
  EXPECT_EQ(scheduler.Wait(*queued).status().code(), StatusCode::kCancelled);
  EXPECT_EQ(scheduler.Wait(*running).status().code(), StatusCode::kCancelled);
}

TEST(RepairSchedulerLifecycleTest, JobSuppliedStopStateIsRejectedLoudly) {
  const auto t1 = MakeViolatingTable(52);
  RepairScheduler scheduler;
  RepairJob base;
  base.table = &t1;
  base.constraints = {XyGivenZ()};

  CancellationToken token;
  RepairJob with_token = base;
  with_token.options.fast.cancel_token = &token;
  Result<JobTicket> r = scheduler.Submit(with_token);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("cancel_token"), std::string::npos);

  RepairJob with_deadline = base;
  with_deadline.options.fast.deadline = Deadline::After(5.0);
  r = scheduler.Submit(with_deadline);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("deadline_seconds"), std::string::npos);

  for (double bad : {0.0, -1.0}) {
    RepairJob with_bad_seconds = base;
    with_bad_seconds.deadline_seconds = bad;
    r = scheduler.Submit(with_bad_seconds);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }

  RepairSchedulerOptions bad_default;
  bad_default.default_deadline_seconds = -2.0;
  RepairScheduler bad_scheduler(bad_default);
  r = bad_scheduler.Submit(base);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("default_deadline_seconds"),
            std::string::npos);
}

TEST(RepairSchedulerLifecycleTest, DefaultDeadlineAppliesToEveryJob) {
  SlowJobFixture slow;
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 1;
  opts.pool_threads = 1;
  opts.default_deadline_seconds = 1e-3;
  const BatchReport report = RepairScheduler(opts).Run({slow.job});
  ASSERT_EQ(report.jobs.size(), 1u);
  ASSERT_FALSE(report.jobs[0].ok());
  EXPECT_EQ(report.jobs[0].status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(report.deadline_exceeded_jobs, 1u);
  EXPECT_EQ(report.failed_jobs, 1u);
}

// ------------------------------------------------------- solver matrix --

/// Every solver family — QCLP (alternating exact LPs), both Capuchin
/// baselines and CapMaxSat — must complete as an ordinary RepairJob on the
/// shared scheduler infrastructure, filling the shared report surface.
TEST(RepairSchedulerSolverMatrixTest, EverySolverFamilyCompletesThroughTheScheduler) {
  const auto table = MakeViolatingTable(61);
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 2;
  opts.pool_threads = 1;
  RepairScheduler scheduler(opts);

  std::vector<RepairJob> jobs;
  {
    RepairJob j;  // the exact/LP path
    j.table = &table;
    j.constraints = {XyGivenZ()};
    j.options.solver = Solver::kQclp;
    j.name = "qclp";
    jobs.push_back(j);
  }
  {
    RepairJob j;
    j.table = &table;
    j.constraints = {XyGivenZ()};
    j.options.solver = Solver::kCapuchinIC;
    j.name = "capuchin-ic";
    jobs.push_back(j);
  }
  {
    RepairJob j;
    j.table = &table;
    j.constraints = {XyGivenZ()};
    j.options.solver = Solver::kCapuchinMF;
    j.options.fairness.nmf_max_iterations = 200;
    j.name = "capuchin-mf";
    jobs.push_back(j);
  }
  {
    RepairJob j;
    j.table = &table;
    j.constraints = {XyGivenZ()};
    j.options.solver = Solver::kCapMaxSat;
    j.name = "capmaxsat";
    jobs.push_back(j);
  }

  const BatchReport report = scheduler.Run(jobs);
  ASSERT_EQ(report.jobs.size(), 4u);
  for (size_t i = 0; i < report.jobs.size(); ++i) {
    ASSERT_TRUE(report.jobs[i].ok())
        << jobs[i].name << ": " << report.jobs[i].status().ToString();
  }
  EXPECT_EQ(report.completed_jobs, 4u);
  EXPECT_EQ(report.failed_jobs, 0u);

  // QCLP drives the constraint out through exact LPs.
  EXPECT_GT(report.jobs[0]->outer_iterations, 0u);
  EXPECT_LT(report.jobs[0]->target_cmi, 1e-6);
  EXPECT_GT(report.jobs[0]->transport_cost, 0.0);
  // The Capuchin IC baseline resamples toward the CI projection; the
  // violation shrinks even under sampling noise.
  EXPECT_LT(report.jobs[1]->final_cmi, report.jobs[1]->initial_cmi);
  EXPECT_LT(report.jobs[2]->final_cmi, report.jobs[2]->initial_cmi);
  // CapMaxSat repairs rows directly (no transport plan) and enforces the
  // MVD *structurally* — per-z cross-product support, reported through
  // `converged` — while the distributional CMI may legitimately stay put.
  EXPECT_TRUE(report.jobs[3]->converged);
}

TEST(RepairSchedulerSolverMatrixTest, QclpJobsHonorCancelAndFairnessJobsHonorDeadlines) {
  const auto table = MakeViolatingTable(62, 400, 2);
  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 1;  // one executor: the fairness job must queue
  opts.pool_threads = 1;
  RepairScheduler scheduler(opts);

  // A QCLP job that never converges on its own (negative tolerance, huge
  // alternation budget): only the scheduler's token can stop it, at the
  // per-alternation / per-pivot cooperative checkpoints.
  RepairJob slow_qclp;
  slow_qclp.table = &table;
  slow_qclp.constraints = {XyGivenZ()};
  slow_qclp.options.solver = Solver::kQclp;
  slow_qclp.options.qclp.max_outer_iterations = 100000000;
  slow_qclp.options.qclp.outer_tolerance = -1.0;
  const Result<JobTicket> running = scheduler.Submit(slow_qclp);
  ASSERT_TRUE(running.ok()) << running.status().ToString();

  // A fairness job queued behind it with a deadline it cannot make: the
  // Submit-anchored clock runs while it waits, so it must die with
  // kDeadlineExceeded, never silently run late.
  RepairJob fair;
  fair.table = &table;
  fair.constraints = {XyGivenZ()};
  fair.options.solver = Solver::kCapuchinIC;
  fair.deadline_seconds = 0.001;
  const Result<JobTicket> queued = scheduler.Submit(fair);
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(scheduler.Cancel(*running).ok());
  const Result<RepairReport> cancelled = scheduler.Wait(*running);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  const Result<RepairReport> deadlined = scheduler.Wait(*queued);
  ASSERT_FALSE(deadlined.ok());
  EXPECT_EQ(deadlined.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RepairSchedulerSolverMatrixTest, JobSuppliedQclpOrFairnessStopStateIsRejected) {
  const auto table = MakeViolatingTable(63);
  RepairScheduler scheduler;
  RepairJob base;
  base.table = &table;
  base.constraints = {XyGivenZ()};

  CancellationToken token;
  RepairJob qclp_token = base;
  qclp_token.options.solver = Solver::kQclp;
  qclp_token.options.qclp.cancel_token = &token;
  Result<JobTicket> r = scheduler.Submit(qclp_token);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("cancel_token"), std::string::npos);

  RepairJob fairness_deadline = base;
  fairness_deadline.options.solver = Solver::kCapuchinIC;
  fairness_deadline.options.fairness.deadline = Deadline::After(1.0);
  r = scheduler.Submit(fairness_deadline);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("deadline"), std::string::npos);
}

}  // namespace
}  // namespace otclean::core
