#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/fast_otclean.h"
#include "lp/transport_lp.h"
#include "ot/cost.h"
#include "ot/sinkhorn.h"
#include "prob/independence.h"

namespace otclean {
namespace {

using core::FastOtClean;
using core::FastOtCleanOptions;
using prob::CiSpec;
using prob::Domain;
using prob::JointDistribution;

// ------------------------------------------------ Domain round-trip sweep --

class DomainRoundTrip
    : public ::testing::TestWithParam<std::vector<size_t>> {};

TEST_P(DomainRoundTrip, EncodeDecodeIdentity) {
  const Domain d = Domain::FromCardinalities(GetParam());
  for (size_t i = 0; i < d.TotalSize(); ++i) {
    EXPECT_EQ(d.Encode(d.Decode(i)), i);
  }
}

TEST_P(DomainRoundTrip, MarginalOfUniformIsUniform) {
  const Domain d = Domain::FromCardinalities(GetParam());
  const auto u = JointDistribution::Uniform(d);
  for (size_t a = 0; a < d.num_attrs(); ++a) {
    const auto m = u.Marginal({a});
    for (size_t v = 0; v < d.Cardinality(a); ++v) {
      EXPECT_NEAR(m[v], 1.0 / d.Cardinality(a), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DomainRoundTrip,
    ::testing::Values(std::vector<size_t>{2}, std::vector<size_t>{5},
                      std::vector<size_t>{2, 2}, std::vector<size_t>{3, 4},
                      std::vector<size_t>{2, 3, 4},
                      std::vector<size_t>{4, 1, 3},
                      std::vector<size_t>{2, 2, 2, 2}));

// -------------------------------------------- CI-projection property sweep --

struct CiCase {
  std::vector<size_t> cards;  ///< at least 3 attrs: x, y, z...
  uint64_t seed;
};

class CiProjectionProperty : public ::testing::TestWithParam<CiCase> {};

TEST_P(CiProjectionProperty, ProjectionIsConsistentAndPreservesMarginals) {
  const auto& param = GetParam();
  const Domain d = Domain::FromCardinalities(param.cards);
  JointDistribution p(d);
  Rng rng(param.seed);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.01 + rng.NextDouble();
  p.Normalize();

  std::vector<size_t> zs;
  for (size_t a = 2; a < param.cards.size(); ++a) zs.push_back(a);
  const CiSpec ci{{0}, {1}, zs};
  const auto q = prob::CiProjection(p, ci);

  EXPECT_NEAR(q.Mass(), 1.0, 1e-9);
  EXPECT_LT(prob::ConditionalMutualInformation(q, ci), 1e-9);
  // (X,Z) and (Y,Z) marginals preserved.
  std::vector<size_t> xz = {0};
  std::vector<size_t> yz = {1};
  xz.insert(xz.end(), zs.begin(), zs.end());
  yz.insert(yz.end(), zs.begin(), zs.end());
  EXPECT_TRUE(q.Marginal(xz).ApproxEquals(p.Marginal(xz), 1e-9));
  EXPECT_TRUE(q.Marginal(yz).ApproxEquals(p.Marginal(yz), 1e-9));
  // The projection never increases KL to p beyond p's self-consistency gap:
  // D(p||q) equals the CMI for saturated constraints (I-projection).
  if (param.cards.size() == 2 + zs.size()) {
    EXPECT_NEAR(p.KlDivergence(q),
                prob::ConditionalMutualInformation(p, ci), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, CiProjectionProperty,
    ::testing::Values(CiCase{{2, 2, 2}, 1}, CiCase{{2, 3, 2}, 2},
                      CiCase{{3, 3, 3}, 3}, CiCase{{2, 2, 4}, 4},
                      CiCase{{4, 2, 2}, 5}, CiCase{{2, 2, 2, 2}, 6},
                      CiCase{{3, 2, 2, 3}, 7}));

// ------------------------------------------------- Sinkhorn property sweep --

struct SinkhornCase {
  size_t n;
  double epsilon;
  uint64_t seed;
};

class SinkhornProperty : public ::testing::TestWithParam<SinkhornCase> {};

TEST_P(SinkhornProperty, PlanIsNonNegativeWithCorrectMarginals) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  linalg::Matrix cost(param.n, param.n);
  for (double& v : cost.data()) v = rng.NextDouble();
  linalg::Vector p(param.n), q(param.n);
  for (size_t i = 0; i < param.n; ++i) {
    p[i] = 0.1 + rng.NextDouble();
    q[i] = 0.1 + rng.NextDouble();
  }
  p.Normalize();
  q.Normalize();

  ot::SinkhornOptions opts;
  opts.epsilon = param.epsilon;
  const auto r = ot::RunSinkhorn(cost, p, q, opts).value();
  for (double v : r.plan.data()) EXPECT_GE(v, 0.0);
  const auto rows = r.plan.RowSums();
  const auto cols = r.plan.ColSums();
  for (size_t i = 0; i < param.n; ++i) EXPECT_NEAR(rows[i], p[i], 1e-5);
  for (size_t j = 0; j < param.n; ++j) EXPECT_NEAR(cols[j], q[j], 1e-5);
}

TEST_P(SinkhornProperty, EntropicCostUpperBoundsExactOt) {
  const auto& param = GetParam();
  Rng rng(param.seed + 100);
  linalg::Matrix cost(param.n, param.n);
  for (double& v : cost.data()) v = rng.NextDouble();
  linalg::Vector p(param.n), q(param.n);
  for (size_t i = 0; i < param.n; ++i) {
    p[i] = 0.1 + rng.NextDouble();
    q[i] = 0.1 + rng.NextDouble();
  }
  p.Normalize();
  q.Normalize();

  ot::SinkhornOptions opts;
  opts.epsilon = param.epsilon;
  const auto sk = ot::RunSinkhorn(cost, p, q, opts).value();
  const auto exact = lp::SolveTransport(cost, p, q).value();
  // The entropic plan is feasible for the exact problem, so its cost is an
  // upper bound (within numerical tolerance).
  EXPECT_GE(sk.transport_cost, exact.cost - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SinkhornProperty,
    ::testing::Values(SinkhornCase{2, 0.05, 1}, SinkhornCase{3, 0.05, 2},
                      SinkhornCase{5, 0.1, 3}, SinkhornCase{8, 0.1, 4},
                      SinkhornCase{5, 0.5, 5}, SinkhornCase{4, 0.02, 6}));

// ---------------------------------------------- FastOTClean property sweep --

struct CleanCase {
  std::vector<size_t> cards;
  double epsilon;
  uint64_t seed;
};

class FastOtCleanProperty : public ::testing::TestWithParam<CleanCase> {};

TEST_P(FastOtCleanProperty, AlwaysProducesCiConsistentTarget) {
  const auto& param = GetParam();
  const Domain d = Domain::FromCardinalities(param.cards);
  JointDistribution p(d);
  Rng rng(param.seed);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.01 + rng.NextDouble();
  p.Normalize();

  std::vector<size_t> zs;
  for (size_t a = 2; a < param.cards.size(); ++a) zs.push_back(a);
  const CiSpec ci{{0}, {1}, zs};
  ot::EuclideanCost cost(param.cards.size());
  FastOtCleanOptions opts;
  opts.epsilon = param.epsilon;
  opts.max_outer_iterations = 150;
  Rng solver_rng(param.seed + 1);
  const auto r = FastOtClean(p, ci, cost, opts, solver_rng).value();

  EXPECT_LT(r.target_cmi, 1e-6);
  EXPECT_GE(r.transport_cost, -1e-9);
  // The plan's source marginal approximately matches p on the active cells.
  const auto src = r.plan.SourceMarginal();
  for (size_t i = 0; i < r.plan.row_cells().size(); ++i) {
    EXPECT_NEAR(src[i], p[r.plan.row_cells()[i]], 0.08);
  }
  // Target marginal approximately matches the reported Q.
  const auto tgt = r.plan.TargetMarginal();
  double tv = 0.0;
  for (size_t j = 0; j < r.plan.col_cells().size(); ++j) {
    tv += std::fabs(tgt[j] - r.target[r.plan.col_cells()[j]]);
  }
  EXPECT_LT(0.5 * tv, 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FastOtCleanProperty,
    ::testing::Values(CleanCase{{2, 2, 2}, 0.1, 1},
                      CleanCase{{2, 2, 3}, 0.1, 2},
                      CleanCase{{3, 2, 2}, 0.05, 3},
                      CleanCase{{2, 3, 2}, 0.2, 4},
                      CleanCase{{2, 2, 2, 2}, 0.1, 5},
                      CleanCase{{3, 3, 2}, 0.1, 6}));

// -------------------------------------------------- Transport LP property --

class TransportProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransportProperty, TriangleInequalityOverThreeDistributions) {
  // EMD with a metric ground cost is a metric: d(p,r) <= d(p,q) + d(q,r).
  Rng rng(GetParam());
  const size_t n = 4;
  // Metric cost: |i - j| on a line.
  linalg::Matrix cost(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      cost(i, j) = std::fabs(static_cast<double>(i) - static_cast<double>(j));
    }
  }
  auto random_dist = [&] {
    linalg::Vector v(n);
    for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
    v.Normalize();
    return v;
  };
  const auto p = random_dist();
  const auto q = random_dist();
  const auto r = random_dist();
  const double dpq = lp::SolveTransport(cost, p, q)->cost;
  const double dqr = lp::SolveTransport(cost, q, r)->cost;
  const double dpr = lp::SolveTransport(cost, p, r)->cost;
  EXPECT_LE(dpr, dpq + dqr + 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace otclean
