#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "core/qclp_cleaner.h"
#include "core/repair.h"
#include "datagen/synthetic.h"
#include "ot/sinkhorn.h"

namespace otclean {
namespace {

// Degenerate and adversarial inputs: the library must fail cleanly (error
// Status) or behave sensibly (identity repair), never crash or NaN.

TEST(RobustnessTest, RepairOnConstantTableIsIdentity) {
  // Every row identical: the empirical distribution is a point mass, which
  // trivially satisfies any CI constraint.
  std::vector<dataset::Column> cols = {datagen::MakeColumn("x", 2),
                                       datagen::MakeColumn("y", 2),
                                       datagen::MakeColumn("z", 2)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(t.AppendRow({1, 0, 1}).ok());
  const core::CiConstraint ci({"x"}, {"y"}, {"z"});
  const auto report = core::RepairTable(t, ci).value();
  EXPECT_NEAR(report.initial_cmi, 0.0, 1e-12);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(report.repaired.Row(r), t.Row(r));
  }
}

TEST(RobustnessTest, RepairSkipsRowsWithMissingConstraintValues) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 300;
  gen.violation = 0.7;
  gen.seed = 1;
  auto table = datagen::MakeScalingDataset(gen).value();
  // Blank x in the first 30 rows.
  for (size_t r = 0; r < 30; ++r) table.SetValue(r, 0, dataset::kMissing);
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  const auto report = core::RepairTable(table, ci).value();
  for (size_t r = 0; r < 30; ++r) {
    EXPECT_TRUE(report.repaired.IsMissing(r, 0));
    EXPECT_EQ(report.repaired.Value(r, 1), table.Value(r, 1));
  }
}

TEST(RobustnessTest, RepairFailsWhenAllConstraintRowsMissing) {
  std::vector<dataset::Column> cols = {datagen::MakeColumn("x", 2),
                                       datagen::MakeColumn("y", 2)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({dataset::kMissing, 0}).ok());
  }
  const core::CiConstraint ci({"x"}, {"y"});
  EXPECT_FALSE(core::RepairTable(t, ci).ok());
}

TEST(RobustnessTest, ConstraintValidationCatchesOverlapsAndEmpties) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 50;
  const auto table = datagen::MakeScalingDataset(gen).value();
  // x appears on both sides.
  const core::CiConstraint overlap({"x"}, {"x"}, {"z0"});
  EXPECT_FALSE(overlap.ResolveColumns(table.schema()).ok());
  // Empty X.
  const core::CiConstraint empty_x({}, {"y"}, {"z0"});
  EXPECT_FALSE(empty_x.ResolveColumns(table.schema()).ok());
}

TEST(RobustnessTest, CardinalityOneAttributesWork) {
  // A conditioning attribute with a single value is a no-op condition.
  std::vector<dataset::Column> cols = {datagen::MakeColumn("x", 2),
                                       datagen::MakeColumn("y", 2),
                                       datagen::MakeColumn("k", 1)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const int x = rng.NextBernoulli(0.5) ? 1 : 0;
    const int y = rng.NextBernoulli(0.8) ? x : 1 - x;  // dependent
    ASSERT_TRUE(t.AppendRow({x, y, 0}).ok());
  }
  const core::CiConstraint ci({"x"}, {"y"}, {"k"});
  const auto report = core::RepairTable(t, ci).value();
  EXPECT_GT(report.initial_cmi, 0.05);
  EXPECT_LT(report.target_cmi, 1e-6);
}

TEST(RobustnessTest, SinkhornWithZeroTargetColumns) {
  // q has zero entries: those columns must receive no mass.
  linalg::Matrix cost(2, 3, 1.0);
  cost(0, 0) = 0.0;
  cost(1, 1) = 0.0;
  linalg::Vector p(std::vector<double>{0.5, 0.5});
  linalg::Vector q(std::vector<double>{0.5, 0.5, 0.0});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  const auto r = ot::RunSinkhorn(cost, p, q, opts).value();
  EXPECT_NEAR(r.plan(0, 2) + r.plan(1, 2), 0.0, 1e-9);
  for (double v : r.plan.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, SinkhornSurvivesExtremeKernelRange) {
  // Penalty cost that underflows most kernel entries: the clamped linear
  // path and the log-domain path must both stay finite.
  linalg::Matrix cost(3, 3, 1e7);
  for (size_t i = 0; i < 3; ++i) cost(i, i) = 0.0;
  cost(0, 1) = 2.0;
  linalg::Vector p(std::vector<double>{0.5, 0.3, 0.2});
  linalg::Vector q(std::vector<double>{0.3, 0.5, 0.2});
  for (const bool log_domain : {false, true}) {
    ot::SinkhornOptions opts;
    opts.epsilon = 0.05;
    opts.relaxed = true;
    opts.lambda = 50.0;
    opts.log_domain = log_domain;
    opts.max_iterations = 2000;
    const auto r = ot::RunSinkhorn(cost, p, q, opts).value();
    for (double v : r.plan.data()) EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(r.plan.Sum(), 0.1);
  }
}

TEST(RobustnessTest, QclpSingleActiveCell) {
  const prob::Domain d = prob::Domain::FromCardinalities({2, 2});
  prob::JointDistribution p(d);
  p[d.Encode({1, 0})] = 1.0;
  const prob::CiSpec ci{{0}, {1}, {}};
  ot::EuclideanCost cost(2);
  const auto r = core::QclpClean(p, ci, cost, core::QclpOptions()).value();
  // A point mass is already independent; no transport needed.
  EXPECT_NEAR(r.transport_cost, 0.0, 1e-9);
  EXPECT_LT(r.target_cmi, 1e-9);
}

TEST(RobustnessTest, StreamingRepairToleratesUnseenTuples) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 200;
  gen.num_z_attrs = 1;
  gen.z_card = 4;
  gen.violation = 0.6;
  gen.seed = 3;
  const auto train = datagen::MakeScalingDataset(gen).value();
  core::OtCleanRepairer repairer(core::CiConstraint({"x"}, {"y"}, {"z0"}));
  ASSERT_TRUE(repairer.Fit(train).ok());
  // A tuple whose (x, y, z) combination may be absent from training: the
  // cleaner passes unknown cells through unchanged.
  Rng rng(4);
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 4; ++z) {
        const std::vector<int> row = {x, y, z};
        const auto out = repairer.RepairRow(row, rng);
        EXPECT_EQ(out.size(), row.size());
      }
    }
  }
}

TEST(RobustnessTest, LoggingLevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed message must not crash.
  OTCLEAN_LOG(Debug) << "suppressed " << 42;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(RobustnessTest, EmptyTableEmpirical) {
  std::vector<dataset::Column> cols = {datagen::MakeColumn("a", 2)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  const auto p = t.Empirical({0});
  EXPECT_DOUBLE_EQ(p.Mass(), 0.0);
}

TEST(RobustnessTest, MapRepairOnHeavilyViolatedData) {
  // MAP repairs are deterministic and must also reduce CMI on a strongly
  // violated dataset.
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 1000;
  gen.violation = 0.95;
  gen.seed = 5;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
  core::RepairOptions opts;
  opts.sample_repair = false;
  opts.fast.epsilon = 0.05;
  const auto report = core::RepairTable(table, ci, opts).value();
  EXPECT_LT(report.final_cmi, report.initial_cmi);
}

}  // namespace
}  // namespace otclean
