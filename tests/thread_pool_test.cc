#include "linalg/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "linalg/transport_kernel.h"
#include "ot/sinkhorn.h"

namespace otclean::linalg {
namespace {

Matrix RandomCost(size_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * 3.0;
  return cost;
}

Vector RandomMarginal(size_t n, uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
  v.Normalize();
  return v;
}

TEST(ThreadPoolTest, PooledParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {1, 2, 7}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits) h = 0;
    ParallelFor(
        hits.size(), pool.num_threads(),
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) ++hits[i];
        },
        /*grain=*/1, &pool);
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  // The whole point of the pool: one construction, thousands of dispatches
  // (a Sinkhorn run's worth). Each dispatch must see all chunks complete
  // before the next starts.
  ThreadPool pool(4);
  std::vector<int> data(512, 0);
  for (int round = 0; round < 2000; ++round) {
    ParallelFor(
        data.size(), pool.num_threads(),
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) ++data[i];
        },
        /*grain=*/1, &pool);
  }
  for (int v : data) EXPECT_EQ(v, 2000);
}

TEST(ThreadPoolTest, PooledBlockedReduceMatchesSerial) {
  std::vector<double> values(10000);
  Rng rng(99);
  for (double& v : values) v = rng.NextDouble() - 0.5;
  auto block_sum = [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) s += values[i];
    return s;
  };
  const double serial = BlockedReduce(values.size(), 1, block_sum);
  for (size_t threads : {2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(BlockedReduce(values.size(), threads, block_sum, &pool), serial);
  }
}

TEST(ThreadPoolTest, PooledKernelPrimitivesBitIdenticalToSpawned) {
  const size_t m = 137, n = 151;
  const Matrix cost = RandomCost(m, n, 41);
  const Vector u = RandomMarginal(m, 42);
  const Vector v = RandomMarginal(n, 43);

  const DenseTransportKernel spawned(cost.GibbsKernel(0.3), 3);
  ThreadPool pool(3);
  const DenseTransportKernel pooled(cost.GibbsKernel(0.3), 3, &pool);

  Vector kv_s, kv_p, ktu_s, ktu_p;
  spawned.Apply(v, kv_s);
  pooled.Apply(v, kv_p);
  spawned.ApplyTranspose(u, ktu_s);
  pooled.ApplyTranspose(u, ktu_p);
  for (size_t i = 0; i < m; ++i) EXPECT_EQ(kv_p[i], kv_s[i]);
  for (size_t j = 0; j < n; ++j) EXPECT_EQ(ktu_p[j], ktu_s[j]);
  EXPECT_TRUE(pooled.ScaleToPlan(u, v).ApproxEquals(spawned.ScaleToPlan(u, v),
                                                    0.0));
  EXPECT_EQ(pooled.TransportCost(cost, u, v), spawned.TransportCost(cost, u, v));
}

TEST(ThreadPoolTest, PooledSinkhornBitIdenticalToSerialAtAnyThreadCount) {
  const Matrix cost = RandomCost(143, 131, 71);
  const Vector p = RandomMarginal(143, 72);
  const Vector q = RandomMarginal(131, 73);
  ot::SinkhornOptions serial_opts;
  serial_opts.epsilon = 0.1;
  serial_opts.relaxed = true;
  serial_opts.lambda = 5.0;
  serial_opts.tolerance = 1e-8;
  serial_opts.num_threads = 1;
  const auto serial = ot::RunSinkhorn(cost, p, q, serial_opts).value();
  const auto sparse_serial =
      ot::RunSinkhornSparse(cost, p, q, serial_opts, 1e-5).value();

  for (size_t threads : {2, 3, 5}) {
    ThreadPool pool(threads);
    ot::SinkhornOptions pooled_opts = serial_opts;
    pooled_opts.num_threads = threads;
    pooled_opts.thread_pool = &pool;

    const auto pooled = ot::RunSinkhorn(cost, p, q, pooled_opts).value();
    EXPECT_EQ(pooled.iterations, serial.iterations);
    EXPECT_TRUE(pooled.plan.ApproxEquals(serial.plan, 0.0));
    EXPECT_EQ(pooled.transport_cost, serial.transport_cost);

    const auto sparse_pooled =
        ot::RunSinkhornSparse(cost, p, q, pooled_opts, 1e-5).value();
    EXPECT_EQ(sparse_pooled.iterations, sparse_serial.iterations);
    EXPECT_TRUE(sparse_pooled.plan.ToDense().ApproxEquals(
        sparse_serial.plan.ToDense(), 0.0));
    EXPECT_EQ(sparse_pooled.transport_cost, sparse_serial.transport_cost);
  }
}

TEST(ThreadPoolTest, ConcurrentDispatchersEachSeeTheirOwnChunksComplete) {
  // Multiple threads drive the same pool at once (the RepairScheduler's
  // sharing model). Every dispatcher's ParallelFor must cover exactly its
  // own index range every round, no matter how workers interleave across
  // the live jobs.
  ThreadPool pool(4);
  constexpr size_t kDispatchers = 4;
  constexpr size_t kRounds = 500;
  constexpr size_t kIndices = 512;
  std::vector<std::vector<int>> data(kDispatchers,
                                     std::vector<int>(kIndices, 0));
  std::vector<std::thread> dispatchers;
  for (size_t d = 0; d < kDispatchers; ++d) {
    dispatchers.emplace_back([&, d] {
      for (size_t round = 0; round < kRounds; ++round) {
        ParallelFor(
            kIndices, pool.num_threads(),
            [&, d](size_t begin, size_t end) {
              for (size_t i = begin; i < end; ++i) ++data[d][i];
            },
            /*grain=*/1, &pool);
      }
    });
  }
  for (std::thread& t : dispatchers) t.join();
  for (const auto& lane : data) {
    for (int v : lane) EXPECT_EQ(v, kRounds);
  }
}

TEST(ThreadPoolTest, SharedPoolUnderConcurrentDispatchersMatchesDedicated) {
  // Two Sinkhorn solves racing on ONE pool must produce exactly the
  // results they produce on dedicated pools: the chunk decomposition of a
  // dispatch depends only on (n, threads, grain), never on pool traffic.
  const Matrix cost_a = RandomCost(143, 131, 71);
  const Vector p_a = RandomMarginal(143, 72);
  const Vector q_a = RandomMarginal(131, 73);
  const Matrix cost_b = RandomCost(97, 111, 74);
  const Vector p_b = RandomMarginal(97, 75);
  const Vector q_b = RandomMarginal(111, 76);

  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.relaxed = true;
  opts.lambda = 5.0;
  opts.tolerance = 1e-8;
  opts.num_threads = 3;

  ot::SinkhornResult dedicated_a, dedicated_b;
  {
    ThreadPool pool_a(3), pool_b(3);
    ot::SinkhornOptions oa = opts, ob = opts;
    oa.thread_pool = &pool_a;
    ob.thread_pool = &pool_b;
    dedicated_a = ot::RunSinkhorn(cost_a, p_a, q_a, oa).value();
    dedicated_b = ot::RunSinkhorn(cost_b, p_b, q_b, ob).value();
  }

  ThreadPool shared(3);
  ot::SinkhornOptions shared_opts = opts;
  shared_opts.thread_pool = &shared;
  ot::SinkhornResult shared_a, shared_b;
  std::thread other([&] {
    shared_b = ot::RunSinkhorn(cost_b, p_b, q_b, shared_opts).value();
  });
  shared_a = ot::RunSinkhorn(cost_a, p_a, q_a, shared_opts).value();
  other.join();

  EXPECT_EQ(shared_a.iterations, dedicated_a.iterations);
  EXPECT_TRUE(shared_a.plan.ApproxEquals(dedicated_a.plan, 0.0));
  EXPECT_EQ(shared_a.transport_cost, dedicated_a.transport_cost);
  EXPECT_EQ(shared_b.iterations, dedicated_b.iterations);
  EXPECT_TRUE(shared_b.plan.ApproxEquals(dedicated_b.plan, 0.0));
  EXPECT_EQ(shared_b.transport_cost, dedicated_b.transport_cost);
}

TEST(ThreadPoolTest, SolverOwnedPoolMatchesExternalPool) {
  // With options.thread_pool unset the solver creates its own pool; the
  // result must be identical either way.
  const Matrix cost = RandomCost(64, 64, 81);
  const Vector p = RandomMarginal(64, 82);
  const Vector q = RandomMarginal(64, 83);
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.relaxed = true;
  opts.lambda = 5.0;
  opts.num_threads = 4;
  const auto own = ot::RunSinkhorn(cost, p, q, opts).value();

  ThreadPool pool(4);
  opts.thread_pool = &pool;
  const auto external = ot::RunSinkhorn(cost, p, q, opts).value();
  EXPECT_EQ(external.iterations, own.iterations);
  EXPECT_TRUE(external.plan.ApproxEquals(own.plan, 0.0));
}

}  // namespace
}  // namespace otclean::linalg
