#include <gtest/gtest.h>

#include <cmath>

#include "core/fast_otclean.h"
#include "ot/cost.h"
#include "prob/independence.h"

namespace otclean::core {
namespace {

using prob::CiSpec;
using prob::Domain;
using prob::JointDistribution;

/// The bag D2 of Example 3.3/3.4: {(1,0,0), (1,0,1), (1,1,0), (1,1,0)} over
/// binary (X, Y, Z), violating Y ⟂ Z.
JointDistribution MakeD2() {
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  std::vector<double> counts(8, 0.0);
  counts[d.Encode({1, 0, 0})] += 1;
  counts[d.Encode({1, 0, 1})] += 1;
  counts[d.Encode({1, 1, 0})] += 2;
  return JointDistribution::FromCounts(d, counts);
}

/// A randomly violated 3-attribute distribution.
JointDistribution MakeViolated(uint64_t seed) {
  const Domain d = Domain::FromCardinalities({2, 2, 3});
  JointDistribution p(d);
  Rng rng(seed);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.02 + rng.NextDouble();
  p.Normalize();
  return p;
}

FastOtCleanOptions DefaultOptions() {
  FastOtCleanOptions opts;
  opts.epsilon = 0.1;
  opts.lambda = 100.0;
  opts.max_outer_iterations = 500;
  opts.outer_tolerance = 1e-7;
  return opts;
}

TEST(FastOtCleanTest, TargetSatisfiesCiOnD2) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {}};  // Y ⟂ Z
  ot::EuclideanCost cost(3);
  Rng rng(1);
  const auto r = FastOtClean(p, ci, cost, DefaultOptions(), rng).value();
  EXPECT_LT(r.target_cmi, 1e-6);
  EXPECT_TRUE(r.converged);
}

TEST(FastOtCleanTest, D2RepairCostIsNearQuarter) {
  // Example 3.4: the optimal probabilistic repair of D2 moves 1/4 of the
  // mass a distance of 1 (cost 0.25). Entropic smoothing inflates this a
  // little; it must stay well below the trivial repair cost.
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {}};
  ot::EuclideanCost cost(3);
  Rng rng(2);
  FastOtCleanOptions opts = DefaultOptions();
  opts.epsilon = 0.03;  // sharp plan
  const auto r = FastOtClean(p, ci, cost, opts, rng).value();
  EXPECT_LT(r.transport_cost, 0.5);
  EXPECT_GT(r.transport_cost, 0.05);
}

TEST(FastOtCleanTest, PlanSourceMarginalMatchesData) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {}};
  ot::EuclideanCost cost(3);
  Rng rng(3);
  const auto r = FastOtClean(p, ci, cost, DefaultOptions(), rng).value();
  const auto src = r.plan.SourceMarginal();
  // Rows correspond to the three distinct tuples of D2 (active domain).
  ASSERT_EQ(src.size(), 3u);
  double total = 0.0;
  for (size_t i = 0; i < src.size(); ++i) total += src[i];
  EXPECT_NEAR(total, 1.0, 0.05);
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_NEAR(src[i], p[r.plan.row_cells()[i]], 0.05);
  }
}

TEST(FastOtCleanTest, ActiveDomainRestrictsRows) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {}};
  ot::EuclideanCost cost(3);
  Rng rng(4);
  const auto r = FastOtClean(p, ci, cost, DefaultOptions(), rng).value();
  EXPECT_EQ(r.plan.row_cells().size(), 3u);   // 3 distinct tuples
  EXPECT_EQ(r.plan.col_cells().size(), 8u);   // full support by default
}

TEST(FastOtCleanTest, RestrictColumnsOption) {
  const auto p = MakeD2();
  const CiSpec ci{{1}, {2}, {}};
  ot::EuclideanCost cost(3);
  FastOtCleanOptions opts = DefaultOptions();
  opts.restrict_columns_to_active = true;
  Rng rng(5);
  const auto r = FastOtClean(p, ci, cost, opts, rng).value();
  EXPECT_EQ(r.plan.col_cells().size(), 3u);
  EXPECT_LT(r.target_cmi, 1e-6);
}

TEST(FastOtCleanTest, ConditionalCiWithZ) {
  const auto p = MakeViolated(11);
  const CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  Rng rng(6);
  const auto r = FastOtClean(p, ci, cost, DefaultOptions(), rng).value();
  EXPECT_LT(r.target_cmi, 1e-6);
  EXPECT_GT(prob::ConditionalMutualInformation(p, ci), r.target_cmi);
}

TEST(FastOtCleanTest, ObjectiveTraceIsRecorded) {
  const auto p = MakeViolated(12);
  const CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  Rng rng(7);
  const auto r = FastOtClean(p, ci, cost, DefaultOptions(), rng).value();
  EXPECT_EQ(r.objective_trace.size(), r.outer_iterations);
  EXPECT_GT(r.total_sinkhorn_iterations, r.outer_iterations);
}

TEST(FastOtCleanTest, NmfInitConvergesFasterThanRandom) {
  // Section 5 / Fig. 10b: NMF initialization reduces outer iterations.
  const auto p = MakeViolated(13);
  const CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  FastOtCleanOptions nmf = DefaultOptions();
  nmf.nmf_init = true;
  FastOtCleanOptions rnd = DefaultOptions();
  rnd.nmf_init = false;
  Rng r1(8), r2(8);
  const auto a = FastOtClean(p, ci, cost, nmf, r1).value();
  const auto b = FastOtClean(p, ci, cost, rnd, r2).value();
  EXPECT_LE(a.outer_iterations, b.outer_iterations + 2);
}

TEST(FastOtCleanTest, WarmStartReducesTotalSinkhornIterations) {
  // Section 5 / Fig. 11b.
  const auto p = MakeViolated(14);
  const CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  FastOtCleanOptions warm = DefaultOptions();
  warm.warm_start = true;
  FastOtCleanOptions cold = DefaultOptions();
  cold.warm_start = false;
  Rng r1(9), r2(9);
  const auto a = FastOtClean(p, ci, cost, warm, r1).value();
  const auto b = FastOtClean(p, ci, cost, cold, r2).value();
  EXPECT_LT(a.total_sinkhorn_iterations, b.total_sinkhorn_iterations);
}

TEST(FastOtCleanTest, IterativeNmfMatchesClosedForm) {
  const auto p = MakeViolated(15);
  const CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  FastOtCleanOptions closed = DefaultOptions();
  FastOtCleanOptions iter = DefaultOptions();
  iter.iterative_nmf = true;
  iter.nmf_max_iterations = 400;
  Rng r1(10), r2(10);
  const auto a = FastOtClean(p, ci, cost, closed, r1).value();
  const auto b = FastOtClean(p, ci, cost, iter, r2).value();
  EXPECT_LT(b.target_cmi, 1e-5);
  EXPECT_NEAR(a.transport_cost, b.transport_cost, 0.05);
}

TEST(FastOtCleanTest, SoftCiStrengthTradesOffCmi) {
  const auto p = MakeViolated(16);
  const CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  FastOtCleanOptions soft = DefaultOptions();
  soft.ci_strength = 0.3;
  Rng r1(11);
  const auto a = FastOtClean(p, ci, cost, soft, r1).value();
  // Soft enforcement leaves residual CMI but still reduces it.
  EXPECT_LT(a.target_cmi, prob::ConditionalMutualInformation(p, ci));
}

TEST(FastOtCleanTest, AlreadyConsistentInputIsNearIdentity) {
  // A CI-consistent distribution should be (almost) untouched.
  const Domain d = Domain::FromCardinalities({2, 2, 2});
  JointDistribution p(d);
  const double pz[2] = {0.5, 0.5};
  const double px[2] = {0.4, 0.6};
  const double py[2] = {0.7, 0.2};
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        const double fx = (x == 1) ? px[z] : 1 - px[z];
        const double fy = (y == 1) ? py[z] : 1 - py[z];
        p[d.Encode({x, y, z})] = pz[z] * fx * fy;
      }
    }
  }
  const CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  FastOtCleanOptions opts = DefaultOptions();
  opts.epsilon = 0.02;
  Rng rng(12);
  const auto r = FastOtClean(p, ci, cost, opts, rng).value();
  EXPECT_LT(r.transport_cost, 0.1);
  EXPECT_LT(r.target.TotalVariation(p), 0.1);
}

TEST(FastOtCleanTest, RejectsBadInputs) {
  const CiSpec ci{{0}, {1}, {}};
  ot::EuclideanCost cost(2);
  Rng rng(13);
  // Unnormalized input.
  const Domain d = Domain::FromCardinalities({2, 2});
  JointDistribution p(d);
  p[0] = 2.0;
  EXPECT_FALSE(FastOtClean(p, ci, cost, DefaultOptions(), rng).ok());
  // Zero mass.
  JointDistribution z(d);
  EXPECT_FALSE(FastOtClean(z, ci, cost, DefaultOptions(), rng).ok());
  // Bad ci_strength.
  JointDistribution u = JointDistribution::Uniform(d);
  FastOtCleanOptions bad = DefaultOptions();
  bad.ci_strength = 2.0;
  EXPECT_FALSE(FastOtClean(u, ci, cost, bad, rng).ok());
}

TEST(FastOtCleanTest, SharperEpsilonLowersTransportCost) {
  const auto p = MakeViolated(17);
  const CiSpec ci{{0}, {1}, {2}};
  ot::EuclideanCost cost(3);
  FastOtCleanOptions sharp = DefaultOptions();
  sharp.epsilon = 0.02;
  FastOtCleanOptions smooth = DefaultOptions();
  smooth.epsilon = 1.0;
  Rng r1(14), r2(14);
  const auto a = FastOtClean(p, ci, cost, sharp, r1).value();
  const auto b = FastOtClean(p, ci, cost, smooth, r2).value();
  EXPECT_LT(a.transport_cost, b.transport_cost + 1e-9);
}

}  // namespace
}  // namespace otclean::core
