#include <gtest/gtest.h>

#include <cmath>

#include "core/repair.h"
#include "datagen/synthetic.h"
#include "ot/cost.h"
#include "ot/sinkhorn.h"
#include "prob/independence.h"

namespace otclean {
namespace {

// ------------------------------------------------- Log-domain Sinkhorn ---

linalg::Matrix SimpleCost() {
  linalg::Matrix c(2, 2);
  c(0, 1) = 1.0;
  c(1, 0) = 1.0;
  return c;
}

TEST(LogSinkhornTest, AgreesWithLinearDomain) {
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  ot::SinkhornOptions lin;
  lin.epsilon = 0.05;
  ot::SinkhornOptions log = lin;
  log.log_domain = true;
  const auto a = ot::RunSinkhorn(SimpleCost(), p, q, lin).value();
  const auto b = ot::RunSinkhorn(SimpleCost(), p, q, log).value();
  EXPECT_TRUE(a.plan.ApproxEquals(b.plan, 1e-6));
  EXPECT_NEAR(a.transport_cost, b.transport_cost, 1e-6);
}

TEST(LogSinkhornTest, RelaxedAgreesWithLinearDomain) {
  linalg::Vector p(std::vector<double>{0.8, 0.2});
  linalg::Vector q(std::vector<double>{0.3, 0.7});
  ot::SinkhornOptions lin;
  lin.epsilon = 0.1;
  lin.relaxed = true;
  lin.lambda = 20.0;
  ot::SinkhornOptions log = lin;
  log.log_domain = true;
  const auto a = ot::RunSinkhorn(SimpleCost(), p, q, lin).value();
  const auto b = ot::RunSinkhorn(SimpleCost(), p, q, log).value();
  EXPECT_TRUE(a.plan.ApproxEquals(b.plan, 1e-6));
}

TEST(LogSinkhornTest, StableAtTinyEpsilon) {
  // Linear-domain kernels underflow at eps = 1e-3 with costs ~1; the
  // log-domain path must still produce a sharp, mass-preserving plan.
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  ot::SinkhornOptions opts;
  opts.epsilon = 1e-3;
  opts.log_domain = true;
  opts.max_iterations = 5000;
  const auto r = ot::RunSinkhorn(SimpleCost(), p, q, opts).value();
  EXPECT_NEAR(r.plan.Sum(), 1.0, 1e-6);
  // Exact OT cost is 0.3; at eps = 1e-3 the entropic bias is negligible.
  EXPECT_NEAR(r.transport_cost, 0.3, 1e-3);
}

TEST(LogSinkhornTest, StableUnderHugePenaltyCosts) {
  // A frozen-attribute style cost with a 1e6 penalty entry.
  linalg::Matrix cost(2, 2);
  cost(0, 1) = 1e6;
  cost(1, 0) = 1.0;
  linalg::Vector p(std::vector<double>{0.6, 0.4});
  linalg::Vector q(std::vector<double>{0.5, 0.5});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.05;
  opts.log_domain = true;
  opts.relaxed = true;
  opts.lambda = 50.0;
  const auto r = ot::RunSinkhorn(cost, p, q, opts).value();
  EXPECT_GT(r.plan.Sum(), 0.5);
  EXPECT_NEAR(r.plan(0, 1), 0.0, 1e-12);  // forbidden move stays empty
}

TEST(LogSinkhornTest, HandlesZeroMarginalEntries) {
  linalg::Vector p(std::vector<double>{1.0, 0.0});
  linalg::Vector q(std::vector<double>{0.5, 0.5});
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.log_domain = true;
  const auto r = ot::RunSinkhorn(SimpleCost(), p, q, opts).value();
  EXPECT_NEAR(r.plan(1, 0) + r.plan(1, 1), 0.0, 1e-12);
}

// ------------------------------------------------- Multi-CI projection ---

TEST(MultiCiTest, SingleConstraintMatchesCiProjection) {
  const prob::Domain d = prob::Domain::FromCardinalities({2, 2, 2});
  prob::JointDistribution p(d);
  Rng rng(3);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.05 + rng.NextDouble();
  p.Normalize();
  const prob::CiSpec ci{{0}, {1}, {2}};
  const auto a = prob::CiProjection(p, ci);
  const auto b = prob::MultiCiProjection(p, {ci});
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
}

TEST(MultiCiTest, TwoConstraintsBothSatisfied) {
  // Over (A, B, C): enforce A ⟂ B | C and A ⟂ C.
  const prob::Domain d = prob::Domain::FromCardinalities({2, 2, 2});
  prob::JointDistribution p(d);
  Rng rng(4);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.05 + rng.NextDouble();
  p.Normalize();
  const prob::CiSpec ci1{{0}, {1}, {2}};
  const prob::CiSpec ci2{{0}, {2}, {}};
  const auto q = prob::MultiCiProjection(p, {ci1, ci2});
  EXPECT_LT(prob::ConditionalMutualInformation(q, ci1), 1e-7);
  EXPECT_LT(prob::ConditionalMutualInformation(q, ci2), 1e-7);
  EXPECT_NEAR(q.Mass(), 1.0, 1e-9);
}

TEST(MultiCiTest, MaxCmiReportsLargest) {
  const prob::Domain d = prob::Domain::FromCardinalities({2, 2, 2});
  prob::JointDistribution p(d);
  p[d.Encode({0, 0, 0})] = 0.5;
  p[d.Encode({1, 1, 1})] = 0.5;
  const prob::CiSpec ci1{{0}, {1}, {2}};  // satisfied (deterministic given z)
  const prob::CiSpec ci2{{0}, {1}, {}};   // violated badly
  const double mx = prob::MaxCmi(p, {ci1, ci2});
  EXPECT_NEAR(mx, prob::ConditionalMutualInformation(p, ci2), 1e-12);
  EXPECT_DOUBLE_EQ(prob::MaxCmi(p, {}), 0.0);
}

// ------------------------------------------- Multi-constraint cleaning ---

TEST(MultiCleanTest, FastOtCleanMultiEnforcesBoth) {
  const prob::Domain d = prob::Domain::FromCardinalities({2, 2, 2});
  prob::JointDistribution p(d);
  Rng rng(5);
  for (size_t i = 0; i < p.size(); ++i) p[i] = 0.05 + rng.NextDouble();
  p.Normalize();
  const prob::CiSpec ci1{{0}, {1}, {2}};
  const prob::CiSpec ci2{{1}, {2}, {}};
  ot::EuclideanCost cost(3);
  core::FastOtCleanOptions opts;
  opts.epsilon = 0.1;
  opts.max_outer_iterations = 200;
  Rng solver_rng(6);
  const auto r =
      core::FastOtCleanMulti(p, {ci1, ci2}, cost, opts, solver_rng).value();
  EXPECT_LT(r.target_cmi, 1e-6);
}

TEST(MultiCleanTest, RejectsEmptyConstraintSet) {
  const prob::Domain d = prob::Domain::FromCardinalities({2, 2});
  const auto p = prob::JointDistribution::Uniform(d);
  ot::EuclideanCost cost(2);
  core::FastOtCleanOptions opts;
  Rng rng(7);
  EXPECT_FALSE(core::FastOtCleanMulti(p, {}, cost, opts, rng).ok());
}

TEST(MultiCleanTest, RepairTableMultiReducesBothCmis) {
  // Two genuinely violated, overlapping constraints: x ⟂ y | (z0,z1) (the
  // planted slice-level dependence) and x ⟂ w0 (the planted marginal
  // correlation with the extra attribute).
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 2000;
  gen.num_z_attrs = 2;
  gen.z_card = 2;
  gen.num_w_attrs = 1;
  gen.w_card = 2;
  gen.violation = 0.7;
  gen.seed = 8;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint c1({"x"}, {"y"}, {"z0", "z1"});
  const core::CiConstraint c2({"x"}, {"w0"});
  ASSERT_GT(core::TableCmi(table, c1).value(), 0.05);
  ASSERT_GT(core::TableCmi(table, c2).value(), 0.005);

  const auto report = core::RepairTableMulti(table, {c1, c2}).value();
  EXPECT_LT(report.target_cmi, 1e-6);
  EXPECT_LT(report.final_cmi, report.initial_cmi);
  EXPECT_EQ(report.repaired.num_rows(), table.num_rows());
  // Both constraints individually improved.
  EXPECT_LT(core::TableCmi(report.repaired, c1).value(),
            core::TableCmi(table, c1).value() * 0.5);
  EXPECT_LT(core::TableCmi(report.repaired, c2).value(),
            core::TableCmi(table, c2).value());
}

TEST(MultiCleanTest, RepairTableMultiValidates) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 100;
  const auto table = datagen::MakeScalingDataset(gen).value();
  EXPECT_FALSE(core::RepairTableMulti(table, {}).ok());
  const core::CiConstraint c({"x"}, {"y"}, {"z0"});

  // Unsupported combinations are loud InvalidArgument errors, not a silent
  // fall-through to the saturated FastOTClean path. The fairness baselines
  // are single-constraint by construction (kQclp is accepted since the
  // shared-engine port — see MultiQclpMatchesSingleQclp in qclp_test.cc).
  core::RepairOptions cap_opts;
  cap_opts.solver = core::Solver::kCapuchinIC;
  const auto cap = core::RepairTableMulti(table, {c}, cap_opts);
  EXPECT_EQ(cap.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cap.status().message().find("single-constraint"),
            std::string::npos);

  core::RepairOptions naive_opts;
  naive_opts.use_saturation = false;
  const auto naive = core::RepairTableMulti(table, {c}, naive_opts);
  EXPECT_EQ(naive.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(naive.status().message().find("use_saturation"),
            std::string::npos);
}

TEST(MultiCleanTest, SingleConstraintMultiMatchesSingleApi) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 800;
  gen.num_z_attrs = 1;
  gen.z_card = 2;
  gen.violation = 0.6;
  gen.seed = 9;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint c({"x"}, {"y"}, {"z0"});
  core::RepairOptions opts;
  opts.seed = 77;
  const auto single = core::RepairTable(table, c, opts).value();
  const auto multi = core::RepairTableMulti(table, {c}, opts).value();
  EXPECT_NEAR(single.target_cmi, multi.target_cmi, 1e-8);
  EXPECT_NEAR(single.transport_cost, multi.transport_cost, 1e-6);
}

}  // namespace
}  // namespace otclean
