#include "core/solve_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/repair.h"
#include "core/repair_scheduler.h"
#include "datagen/synthetic.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "ot/sinkhorn.h"

namespace otclean::core {
namespace {

// ---------------------------------------------------------------------------
// Key construction

TEST(SolveCacheKeyTest, ZeroFingerprintYieldsInvalidKey) {
  SolveCacheKey key = MakeSolveCacheKey(0, 4, 4, 0.1, 0.0, false);
  EXPECT_FALSE(key.valid());

  // Invalid keys are silent no-ops: no counters move, nothing is stored.
  SolveCache cache;
  EXPECT_FALSE(cache.FindKernel(key).has_value());
  cache.InsertKernel(key,
                     CachedKernel{std::make_shared<linalg::Matrix>(2, 2, 1.0),
                                  nullptr, nullptr, nullptr, nullptr,
                                  nullptr});
  EXPECT_FALSE(cache.FindWarmStart(key).has_value());
  SolveCacheStats s = cache.Stats();
  EXPECT_EQ(s.kernel_hits, 0u);
  EXPECT_EQ(s.kernel_misses, 0u);
  EXPECT_EQ(s.warm_misses, 0u);
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(SolveCacheKeyTest, EveryInputPerturbsTheKey) {
  const SolveCacheKey base = MakeSolveCacheKey(0xABCD, 8, 6, 0.1, 1e-9, false);
  ASSERT_TRUE(base.valid());
  EXPECT_TRUE(base == MakeSolveCacheKey(0xABCD, 8, 6, 0.1, 1e-9, false));

  const SolveCacheKey variants[] = {
      MakeSolveCacheKey(0xABCE, 8, 6, 0.1, 1e-9, false),  // cost fingerprint
      MakeSolveCacheKey(0xABCD, 9, 6, 0.1, 1e-9, false),  // rows
      MakeSolveCacheKey(0xABCD, 8, 7, 0.1, 1e-9, false),  // cols
      MakeSolveCacheKey(0xABCD, 8, 6, 0.2, 1e-9, false),  // epsilon
      MakeSolveCacheKey(0xABCD, 8, 6, 0.1, 1e-8, false),  // truncation
      MakeSolveCacheKey(0xABCD, 8, 6, 0.1, 0.0, false),   // sparse vs dense
      MakeSolveCacheKey(0xABCD, 8, 6, 0.1, 1e-9, true),   // log domain
      MakeSolveCacheKey(0xABCD, 8, 6, 0.1, 1e-9, false, /*salt=*/1),
      MakeSolveCacheKey(0xABCD, 8, 6, 0.1, 1e-9, false, /*salt=*/0,
                        linalg::Precision::kFloat32),  // storage precision
  };
  for (const SolveCacheKey& v : variants) {
    EXPECT_FALSE(base == v);
  }
}

TEST(SolveCacheKeyTest, EqualityChecksVerbatimFieldsNotJustTheHash) {
  // Two keys with the *same* content hash but different dimensions must not
  // compare equal — a content-hash collision may map them to one bucket,
  // but it can never alias their entries.
  SolveCacheKey a = MakeSolveCacheKey(0x1, 4, 4, 0.1, 0.0, false);
  SolveCacheKey b = a;
  b.rows = 5;  // simulate a collision: identical content, different shape
  EXPECT_FALSE(a == b);

  SolveCache cache;
  cache.InsertKernel(a,
                     CachedKernel{std::make_shared<linalg::Matrix>(4, 4, 1.0),
                                  nullptr, nullptr, nullptr, nullptr,
                                  nullptr});
  EXPECT_FALSE(cache.FindKernel(b).has_value());
  EXPECT_TRUE(cache.FindKernel(a).has_value());
}

// ---------------------------------------------------------------------------
// LRU / budget mechanics (synthetic entries; each dense 100x100 = 80 KB)

CachedKernel MakeDenseEntry(double fill) {
  return CachedKernel{std::make_shared<linalg::Matrix>(100, 100, fill), nullptr,
                      nullptr, nullptr, nullptr, nullptr};
}

constexpr size_t kEntryBytes = 100 * 100 * sizeof(double);

SolveCacheKey TestKey(uint64_t fp) {
  return MakeSolveCacheKey(fp, 100, 100, 0.1, 0.0, false);
}

TEST(SolveCacheLruTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  SolveCache cache(2 * kEntryBytes);
  cache.InsertKernel(TestKey(1), MakeDenseEntry(1.0));
  cache.InsertKernel(TestKey(2), MakeDenseEntry(2.0));
  EXPECT_EQ(cache.Stats().entries, 2u);
  EXPECT_LE(cache.Stats().bytes_cached, cache.byte_budget());

  // Touch key 1 so key 2 becomes the LRU victim.
  ASSERT_TRUE(cache.FindKernel(TestKey(1)).has_value());
  cache.InsertKernel(TestKey(3), MakeDenseEntry(3.0));

  SolveCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.bytes_cached, cache.byte_budget());
  EXPECT_TRUE(cache.FindKernel(TestKey(1)).has_value());
  EXPECT_TRUE(cache.FindKernel(TestKey(3)).has_value());
  EXPECT_FALSE(cache.FindKernel(TestKey(2)).has_value());  // evicted
}

TEST(SolveCacheLruTest, PinnedEntriesAreChargedButNeverEvicted) {
  SolveCache cache(kEntryBytes);  // room for exactly one entry
  // Hold a handle to pin entry 1 as "in use by a running solve".
  CachedKernel pinned = cache.InsertKernel(TestKey(1), MakeDenseEntry(1.0));
  ASSERT_FALSE(pinned.empty());

  cache.InsertKernel(TestKey(2), MakeDenseEntry(2.0));
  SolveCacheStats s = cache.Stats();
  // Entry 1 is over budget but pinned: still resident, counted as pinned.
  EXPECT_TRUE(cache.FindKernel(TestKey(1)).has_value());
  EXPECT_GE(s.bytes_cached, kEntryBytes);
  EXPECT_GE(s.bytes_pinned, kEntryBytes);

  // Release the pin: the next insert can evict entry 1 (and any other
  // unpinned overflow) down to the budget.
  pinned = CachedKernel{};
  cache.InsertKernel(TestKey(3), MakeDenseEntry(3.0));
  s = cache.Stats();
  EXPECT_LE(s.bytes_cached, cache.byte_budget() + kEntryBytes);
  EXPECT_GE(s.evictions, 1u);
  EXPECT_FALSE(cache.FindKernel(TestKey(1)).has_value());
}

TEST(SolveCacheLruTest, InsertRaceSharesTheResidentKernel) {
  SolveCache cache;
  CachedKernel first = cache.InsertKernel(TestKey(7), MakeDenseEntry(1.0));
  // A second insert under the same key (the losing thread of a build race)
  // gets the resident storage back, not its own copy.
  CachedKernel second = cache.InsertKernel(TestKey(7), MakeDenseEntry(99.0));
  EXPECT_EQ(first.dense.get(), second.dense.get());
  EXPECT_EQ(cache.Stats().insertions, 1u);
  EXPECT_EQ((*second.dense)(0, 0), 1.0);
}

TEST(SolveCacheLruTest, WarmStoreKeepsFirstColdBaseline) {
  SolveCache cache;
  const SolveCacheKey key = TestKey(9);
  cache.StoreWarmStart(key, linalg::Vector::Ones(3), linalg::Vector::Ones(4),
                       /*solve_iterations=*/120);
  cache.StoreWarmStart(key, linalg::Vector::Ones(3), linalg::Vector::Ones(4),
                       /*solve_iterations=*/5);  // warm rerun, much faster
  std::optional<CachedWarmStart> warm = cache.FindWarmStart(key);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->cold_iterations, 120u);  // baseline survives refreshes
  EXPECT_EQ(warm->u.size(), 3u);
  EXPECT_EQ(warm->v.size(), 4u);
}

TEST(SolveCacheStatsTest, DeltaSubtractsCountersKeepsGauges) {
  SolveCacheStats before;
  before.kernel_hits = 5;
  before.kernel_misses = 2;
  before.entries = 10;
  before.bytes_cached = 1000;
  SolveCacheStats after;
  after.kernel_hits = 9;
  after.kernel_misses = 3;
  after.entries = 4;
  after.bytes_cached = 400;
  SolveCacheStats d = DeltaStats(before, after);
  EXPECT_EQ(d.kernel_hits, 4u);
  EXPECT_EQ(d.kernel_misses, 1u);
  EXPECT_EQ(d.entries, 4u);        // gauge: end value
  EXPECT_EQ(d.bytes_cached, 400u); // gauge: end value
}

// ---------------------------------------------------------------------------
// End-to-end through the Sinkhorn entry points

linalg::Matrix TestCost(size_t rows, size_t cols) {
  linalg::Matrix cost(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double d = static_cast<double>(r) - static_cast<double>(c);
      cost(r, c) = d * d / 10.0 + 0.01 * static_cast<double>(c);
    }
  }
  return cost;
}

linalg::Vector UniformMarginal(size_t n) {
  return linalg::Vector(n, 1.0 / static_cast<double>(n));
}

TEST(SolveCacheSinkhornTest, DenseHitIsBitIdenticalToMiss) {
  const linalg::Matrix cost = TestCost(9, 7);
  const linalg::Vector p = UniformMarginal(9), q = UniformMarginal(7);

  SolveCache cache;
  ot::SinkhornOptions opts;
  opts.epsilon = 0.08;
  opts.tolerance = 1e-10;
  opts.num_threads = 1;
  opts.solve_cache = &cache;
  opts.cache_cost_fingerprint = 0xC0FFEE;

  Result<ot::SinkhornResult> cold = ot::RunSinkhorn(cost, p, q, opts);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  Result<ot::SinkhornResult> hot = ot::RunSinkhorn(cost, p, q, opts);
  ASSERT_TRUE(hot.ok()) << hot.status().message();

  // Bit-identical: the hit iterated on the very storage the miss built.
  EXPECT_TRUE(cold->plan.data() == hot->plan.data());
  EXPECT_TRUE(cold->u.data() == hot->u.data());
  EXPECT_TRUE(cold->v.data() == hot->v.data());
  EXPECT_EQ(cold->transport_cost, hot->transport_cost);
  EXPECT_EQ(cold->iterations, hot->iterations);

  // And identical to a cache-less solve.
  ot::SinkhornOptions plain = opts;
  plain.solve_cache = nullptr;
  plain.cache_cost_fingerprint = 0;
  Result<ot::SinkhornResult> off = ot::RunSinkhorn(cost, p, q, plain);
  ASSERT_TRUE(off.ok());
  EXPECT_TRUE(off->plan.data() == hot->plan.data());

  SolveCacheStats s = cache.Stats();
  EXPECT_EQ(s.kernel_misses, 1u);
  EXPECT_EQ(s.kernel_hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes_cached, 0u);
}

TEST(SolveCacheSinkhornTest, SparseAndLogHitsAreBitIdentical) {
  const linalg::Matrix cost = TestCost(10, 8);
  const linalg::Vector p = UniformMarginal(10), q = UniformMarginal(8);

  for (const bool log_domain : {false, true}) {
    SolveCache cache;
    ot::SinkhornOptions opts;
    opts.epsilon = 0.08;
    opts.tolerance = 1e-10;
    opts.num_threads = 1;
    opts.log_domain = log_domain;
    opts.relaxed = true;  // truncation under-serves columns legitimately
    opts.solve_cache = &cache;
    opts.cache_cost_fingerprint = 0xBEEF;

    Result<ot::SparseSinkhornResult> cold =
        ot::RunSinkhornSparse(cost, p, q, opts, /*kernel_cutoff=*/1e-6);
    ASSERT_TRUE(cold.ok()) << cold.status().message();
    Result<ot::SparseSinkhornResult> hot =
        ot::RunSinkhornSparse(cost, p, q, opts, /*kernel_cutoff=*/1e-6);
    ASSERT_TRUE(hot.ok()) << hot.status().message();

    EXPECT_TRUE(cold->plan.values() == hot->plan.values())
        << "log_domain=" << log_domain;
    EXPECT_TRUE(cold->u.data() == hot->u.data());
    EXPECT_TRUE(cold->v.data() == hot->v.data());
    EXPECT_EQ(cold->transport_cost, hot->transport_cost);
    EXPECT_EQ(cold->iterations, hot->iterations);

    SolveCacheStats s = cache.Stats();
    EXPECT_EQ(s.kernel_misses, 1u) << "log_domain=" << log_domain;
    EXPECT_EQ(s.kernel_hits, 1u) << "log_domain=" << log_domain;
  }
}

TEST(SolveCacheSinkhornTest, F32HitIsBitIdenticalToMissAndKeyedSeparately) {
  const linalg::Matrix cost = TestCost(9, 7);
  const linalg::Vector p = UniformMarginal(9), q = UniformMarginal(7);

  SolveCache cache;
  ot::SinkhornOptions opts;
  opts.epsilon = 0.08;
  opts.tolerance = 1e-10;
  opts.num_threads = 1;
  opts.precision = linalg::Precision::kFloat32;
  opts.solve_cache = &cache;
  opts.cache_cost_fingerprint = 0xF32F32;

  Result<ot::SinkhornResult> cold = ot::RunSinkhorn(cost, p, q, opts);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  Result<ot::SinkhornResult> hot = ot::RunSinkhorn(cost, p, q, opts);
  ASSERT_TRUE(hot.ok()) << hot.status().message();

  // The f32 hit iterated on the very float storage the miss built.
  EXPECT_TRUE(cold->plan.data() == hot->plan.data());
  EXPECT_TRUE(cold->u.data() == hot->u.data());
  EXPECT_TRUE(cold->v.data() == hot->v.data());
  EXPECT_EQ(cold->iterations, hot->iterations);

  // And identical to a cache-less f32 solve: the cache cannot change
  // results within a precision.
  ot::SinkhornOptions plain = opts;
  plain.solve_cache = nullptr;
  plain.cache_cost_fingerprint = 0;
  Result<ot::SinkhornResult> off = ot::RunSinkhorn(cost, p, q, plain);
  ASSERT_TRUE(off.ok());
  EXPECT_TRUE(off->plan.data() == hot->plan.data());

  // Same problem at f64 must NOT reuse the f32 entry: the precisions key
  // separate kernels, or an f64 caller would silently get float storage.
  ot::SinkhornOptions f64o = opts;
  f64o.precision = linalg::Precision::kFloat64;
  ASSERT_TRUE(ot::RunSinkhorn(cost, p, q, f64o).ok());

  SolveCacheStats s = cache.Stats();
  EXPECT_EQ(s.kernel_misses, 2u);
  EXPECT_EQ(s.kernel_hits, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(SolveCacheSinkhornTest, SparseF32HitIsBitIdenticalToMiss) {
  const linalg::Matrix cost = TestCost(10, 8);
  const linalg::Vector p = UniformMarginal(10), q = UniformMarginal(8);

  SolveCache cache;
  ot::SinkhornOptions opts;
  opts.epsilon = 0.08;
  opts.tolerance = 1e-10;
  opts.num_threads = 1;
  opts.precision = linalg::Precision::kFloat32;
  opts.relaxed = true;  // truncation under-serves columns legitimately
  opts.solve_cache = &cache;
  opts.cache_cost_fingerprint = 0xF32BEEF;

  Result<ot::SparseSinkhornResult> cold =
      ot::RunSinkhornSparse(cost, p, q, opts, /*kernel_cutoff=*/1e-6);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  Result<ot::SparseSinkhornResult> hot =
      ot::RunSinkhornSparse(cost, p, q, opts, /*kernel_cutoff=*/1e-6);
  ASSERT_TRUE(hot.ok()) << hot.status().message();

  EXPECT_TRUE(cold->plan.values() == hot->plan.values());
  EXPECT_TRUE(cold->u.data() == hot->u.data());
  EXPECT_TRUE(cold->v.data() == hot->v.data());
  EXPECT_EQ(cold->iterations, hot->iterations);

  SolveCacheStats s = cache.Stats();
  EXPECT_EQ(s.kernel_misses, 1u);
  EXPECT_EQ(s.kernel_hits, 1u);
}

TEST(SolveCacheSinkhornTest, DistinctEpsilonAndCutoffUseDistinctEntries) {
  const linalg::Matrix cost = TestCost(6, 6);
  const linalg::Vector p = UniformMarginal(6), q = UniformMarginal(6);

  SolveCache cache;
  ot::SinkhornOptions opts;
  opts.num_threads = 1;
  opts.solve_cache = &cache;
  opts.cache_cost_fingerprint = 0x123;

  opts.epsilon = 0.08;
  ASSERT_TRUE(ot::RunSinkhorn(cost, p, q, opts).ok());
  opts.epsilon = 0.15;  // different ε ⇒ different kernel ⇒ new entry
  ASSERT_TRUE(ot::RunSinkhorn(cost, p, q, opts).ok());
  SolveCacheStats s = cache.Stats();
  EXPECT_EQ(s.kernel_misses, 2u);
  EXPECT_EQ(s.kernel_hits, 0u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(SolveCacheSinkhornTest, WarmStartConvergesFasterAtEqualTolerance) {
  const linalg::Matrix cost = TestCost(12, 12);
  const linalg::Vector p = UniformMarginal(12), q = UniformMarginal(12);

  SolveCache cache;
  ot::SinkhornOptions opts;
  opts.epsilon = 0.05;
  opts.tolerance = 1e-10;
  opts.num_threads = 1;
  opts.solve_cache = &cache;
  opts.cache_cost_fingerprint = 0xFEED;
  opts.cache_warm_start = true;

  Result<ot::SinkhornResult> cold = ot::RunSinkhorn(cost, p, q, opts);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->converged);
  ASSERT_GT(cold->iterations, 1u);

  Result<ot::SinkhornResult> warm = ot::RunSinkhorn(cost, p, q, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->converged);
  EXPECT_LT(warm->iterations, cold->iterations);

  // Same tolerance: marginals of the warm plan match p to the same order.
  const linalg::Vector rows = warm->plan.RowSums();
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(rows[i], p[i], 1e-6);
  }
  EXPECT_NEAR(warm->transport_cost, cold->transport_cost,
              1e-6 * (1.0 + std::abs(cold->transport_cost)));

  SolveCacheStats s = cache.Stats();
  EXPECT_EQ(s.warm_hits, 1u);
  EXPECT_GE(s.warm_misses, 1u);  // the cold solve's lookup
  EXPECT_EQ(s.warm_iterations_saved, cold->iterations - warm->iterations);
}

// ---------------------------------------------------------------------------
// Through FastOTClean / the RepairScheduler (the TSan-hammered paths)

dataset::Table MakeViolatingTable(uint64_t seed, size_t rows = 300) {
  datagen::ScalingDatasetOptions opts;
  opts.num_rows = rows;
  opts.num_z_attrs = 1;
  opts.z_card = 2;
  opts.violation = 0.7;
  opts.seed = seed;
  return datagen::MakeScalingDataset(opts).value();
}

CiConstraint XyGivenZ() { return CiConstraint({"x"}, {"y"}, {"z0"}); }

RepairOptions FastRepairOptions() {
  RepairOptions opts;
  opts.fast.epsilon = 0.08;
  opts.fast.max_outer_iterations = 30;
  opts.fast.max_sinkhorn_iterations = 300;
  opts.fast.num_threads = 1;
  return opts;
}

TEST(SolveCacheRepairTest, RepeatedRepairHitsAndStaysBitIdentical) {
  const dataset::Table table = MakeViolatingTable(31);
  SolveCache cache;
  RepairOptions opts = FastRepairOptions();
  opts.fast.solve_cache = &cache;

  Result<RepairReport> cold = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  EXPECT_EQ(cold->cache_kernel_misses, 1u);
  EXPECT_EQ(cold->cache_kernel_hits, 0u);
  EXPECT_FALSE(cold->cache_warm_started);

  Result<RepairReport> hot = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(hot.ok()) << hot.status().message();
  EXPECT_EQ(hot->cache_kernel_hits, 1u);
  EXPECT_EQ(hot->cache_kernel_misses, 0u);

  // Kernel reuse alone (no warm start) leaves results bit-identical.
  EXPECT_TRUE(cold->repaired.SameContents(hot->repaired));
  EXPECT_EQ(cold->transport_cost, hot->transport_cost);
  EXPECT_EQ(cold->final_cmi, hot->final_cmi);
  EXPECT_EQ(cold->total_sinkhorn_iterations, hot->total_sinkhorn_iterations);
}

TEST(SolveCacheRepairTest, CacheWarmStartSavesIterationsAcrossRepairs) {
  const dataset::Table table = MakeViolatingTable(32);
  SolveCache cache;
  // This test needs the cold repair to actually converge (only converged
  // potentials are stored): a gentle λ so the relaxed-update contraction
  // λ/(λ+ε) stays well under 1, and tolerances this problem reaches.
  RepairOptions opts;
  opts.fast.epsilon = 0.2;
  opts.fast.lambda = 10.0;
  opts.fast.sinkhorn_tolerance = 1e-7;
  opts.fast.outer_tolerance = 1e-3;
  opts.fast.num_threads = 1;
  opts.fast.solve_cache = &cache;
  opts.fast.cache_warm_start = true;

  Result<RepairReport> cold = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  ASSERT_TRUE(cold->converged);
  EXPECT_FALSE(cold->cache_warm_started);

  Result<RepairReport> warm = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(warm.ok()) << warm.status().message();
  EXPECT_TRUE(warm->converged);
  EXPECT_TRUE(warm->cache_warm_started);
  EXPECT_LE(warm->total_sinkhorn_iterations, cold->total_sinkhorn_iterations);
  if (warm->total_sinkhorn_iterations < cold->total_sinkhorn_iterations) {
    EXPECT_EQ(warm->cache_warm_iterations_saved,
              cold->total_sinkhorn_iterations -
                  warm->total_sinkhorn_iterations);
  } else {
    EXPECT_EQ(warm->cache_warm_iterations_saved, 0u);
  }
  // Equal tolerance: the warm repair satisfies the constraint as well.
  EXPECT_NEAR(warm->target_cmi, cold->target_cmi, 1e-6);
}

TEST(SolveCacheSchedulerTest, RejectsJobsThatBringTheirOwnCache) {
  const dataset::Table table = MakeViolatingTable(33);
  SolveCache rogue;
  RepairJob job;
  job.table = &table;
  job.constraints = {XyGivenZ()};
  job.options = FastRepairOptions();
  job.options.fast.solve_cache = &rogue;  // scheduler must reject this

  RepairSchedulerOptions sched;
  sched.max_concurrent_jobs = 1;
  sched.pool_threads = 1;
  sched.cache_bytes = 64 << 20;
  RepairScheduler scheduler(sched);
  BatchReport report = scheduler.Run({job});
  ASSERT_EQ(report.failed_jobs, 1u);
  EXPECT_FALSE(report.jobs[0].ok());
}

/// The TSan target: four executors hammering one shared cache with a batch
/// that repeats two distinct keys, racing FindKernel/InsertKernel and the
/// warm-start-free read path. Results must match a cache-less sequential
/// run bit for bit.
TEST(SolveCacheSchedulerTest, ConcurrentBatchSharesOneCacheBitIdentically) {
  const dataset::Table t1 = MakeViolatingTable(34);
  const dataset::Table t2 = MakeViolatingTable(35);

  std::vector<RepairJob> jobs;
  for (size_t i = 0; i < 8; ++i) {
    RepairJob j;
    j.table = (i % 2 == 0) ? &t1 : &t2;
    j.constraints = {XyGivenZ()};
    j.options = FastRepairOptions();
    j.id = i;  // stable seeds regardless of scheduling
    jobs.push_back(j);
  }

  RepairSchedulerOptions cached;
  cached.max_concurrent_jobs = 4;
  cached.pool_threads = 1;
  cached.cache_bytes = 256 << 20;
  RepairScheduler scheduler(cached);
  BatchReport report = scheduler.Run(jobs);
  ASSERT_EQ(report.completed_jobs, jobs.size());

  // Two distinct keys (one per table): every further lookup must hit. An
  // insert race can add a miss but never a bogus hit, and the resident-
  // entry-wins policy keeps storage shared either way.
  EXPECT_GE(report.cache.kernel_misses, 2u);
  EXPECT_GE(report.cache.kernel_hits, jobs.size() - 2 * 4u);
  EXPECT_EQ(report.cache.kernel_hits + report.cache.kernel_misses,
            jobs.size());
  EXPECT_EQ(report.cache.entries, 2u);
  EXPECT_GT(report.cache.bytes_cached, 0u);
  EXPECT_EQ(report.cache.warm_hits, 0u);  // warm starts stay opt-in

  RepairSchedulerOptions plain;
  plain.max_concurrent_jobs = 1;
  plain.pool_threads = 1;
  RepairScheduler sequential(plain);
  BatchReport baseline = sequential.Run(jobs);
  ASSERT_EQ(baseline.completed_jobs, jobs.size());
  EXPECT_EQ(baseline.cache.kernel_hits + baseline.cache.kernel_misses, 0u);

  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(report.jobs[i].ok());
    ASSERT_TRUE(baseline.jobs[i].ok());
    EXPECT_TRUE(report.jobs[i]->repaired.SameContents(baseline.jobs[i]->repaired))
        << "job " << i;
    EXPECT_EQ(report.jobs[i]->transport_cost, baseline.jobs[i]->transport_cost)
        << "job " << i;
  }
}

/// TSan target for the OTCLEAN_EXCLUDES(mu_) accessor contract on
/// SolveCache::Stats(): a poller thread hammers shared_cache()->Stats()
/// (and DeltaStats folding) while an 8-job batch runs on four executors.
/// Under -fsanitize=thread this pins down that Stats() snapshots the
/// counters under the cache mutex — no torn reads, no counter going
/// backwards mid-batch.
TEST(SolveCacheSchedulerTest, StatsPollRacingABatchStaysCoherent) {
  const dataset::Table t1 = MakeViolatingTable(36);
  const dataset::Table t2 = MakeViolatingTable(37);

  std::vector<RepairJob> jobs;
  for (size_t i = 0; i < 8; ++i) {
    RepairJob j;
    j.table = (i % 2 == 0) ? &t1 : &t2;
    j.constraints = {XyGivenZ()};
    j.options = FastRepairOptions();
    j.id = i;
    jobs.push_back(j);
  }

  RepairSchedulerOptions sched;
  sched.max_concurrent_jobs = 4;
  sched.pool_threads = 1;
  sched.cache_bytes = 256 << 20;
  RepairScheduler scheduler(sched);
  ASSERT_NE(scheduler.shared_cache(), nullptr);

  std::atomic<bool> stop{false};
  std::atomic<size_t> polls{0};
  std::thread poller([&] {
    SolveCacheStats last = scheduler.shared_cache()->Stats();
    while (!stop.load(std::memory_order_relaxed)) {
      const SolveCacheStats now = scheduler.shared_cache()->Stats();
      const SolveCacheStats delta = DeltaStats(last, now);
      // Counters are monotone within a batch; a snapshot taken under the
      // cache mutex can never observe one running backwards (an unsigned
      // wrap in the delta would betray a torn read).
      EXPECT_GE(now.kernel_hits, last.kernel_hits);
      EXPECT_GE(now.kernel_misses, last.kernel_misses);
      EXPECT_GE(now.insertions, last.insertions);
      EXPECT_LE(delta.kernel_hits, now.kernel_hits);
      EXPECT_LE(delta.kernel_misses, now.kernel_misses);
      last = now;
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const BatchReport report = scheduler.Run(jobs);
  stop.store(true);
  poller.join();

  ASSERT_EQ(report.completed_jobs, jobs.size());
  EXPECT_GT(polls.load(), 0u);
  const SolveCacheStats end = scheduler.shared_cache()->Stats();
  EXPECT_EQ(end.kernel_hits + end.kernel_misses, jobs.size());
  EXPECT_EQ(end.entries, 2u);  // one kernel per distinct table
}

}  // namespace
}  // namespace otclean::core
