#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "dataset/csv.h"
#include "dataset/discretize.h"
#include "dataset/schema.h"
#include "dataset/table.h"

namespace otclean::dataset {
namespace {

Schema TwoColSchema() {
  Column a{"color", {"red", "green", "blue"}};
  Column b{"size", {"s", "m"}};
  return Schema({a, b});
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, ColumnLookup) {
  const Schema s = TwoColSchema();
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.ColumnIndex("size").value(), 1u);
  EXPECT_FALSE(s.ColumnIndex("weight").ok());
}

TEST(SchemaTest, CategoryCode) {
  const Schema s = TwoColSchema();
  EXPECT_EQ(s.CategoryCode(0, "green").value(), 1);
  EXPECT_FALSE(s.CategoryCode(0, "purple").ok());
  EXPECT_FALSE(s.CategoryCode(5, "red").ok());
}

TEST(SchemaTest, AddColumnRejectsDuplicates) {
  Schema s = TwoColSchema();
  EXPECT_TRUE(s.AddColumn({"weight", {"light", "heavy"}}).ok());
  EXPECT_EQ(s.AddColumn({"color", {"x"}}).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ToDomainMatchesCardinalities) {
  const Schema s = TwoColSchema();
  const prob::Domain d = s.ToDomain();
  EXPECT_EQ(d.TotalSize(), 6u);
  EXPECT_EQ(d.Name(0), "color");
  const prob::Domain dsub = s.ToDomain({1});
  EXPECT_EQ(dsub.TotalSize(), 2u);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, AppendAndRead) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({0, 1}).ok());
  ASSERT_TRUE(t.AppendRow({2, 0}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Value(1, 0), 2);
  EXPECT_EQ(t.Label(1, 0), "blue");
  EXPECT_EQ(t.Row(0), (std::vector<int>{0, 1}));
}

TEST(TableTest, AppendValidatesArityAndRange) {
  Table t(TwoColSchema());
  EXPECT_FALSE(t.AppendRow({0}).ok());
  EXPECT_FALSE(t.AppendRow({3, 0}).ok());
  EXPECT_FALSE(t.AppendRow({0, -2}).ok());
  EXPECT_TRUE(t.AppendRow({kMissing, 1}).ok());
}

TEST(TableTest, MissingHandling) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({kMissing, 1}).ok());
  ASSERT_TRUE(t.AppendRow({0, 0}).ok());
  EXPECT_TRUE(t.HasMissing());
  EXPECT_EQ(t.CountMissing(), 1u);
  EXPECT_TRUE(t.IsMissing(0, 0));
  EXPECT_EQ(t.Label(0, 0), "?");
}

TEST(TableTest, SetValueAndSetRow) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({0, 0}).ok());
  t.SetValue(0, 1, 1);
  EXPECT_EQ(t.Value(0, 1), 1);
  t.SetRow(0, {2, 0});
  EXPECT_EQ(t.Row(0), (std::vector<int>{2, 0}));
}

TEST(TableTest, SelectRowsAndColumns) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({0, 0}).ok());
  ASSERT_TRUE(t.AppendRow({1, 1}).ok());
  ASSERT_TRUE(t.AppendRow({2, 0}).ok());
  const Table sub = t.SelectRows({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.Value(0, 0), 2);
  const Table cols = t.SelectColumns({1});
  EXPECT_EQ(cols.num_columns(), 1u);
  EXPECT_EQ(cols.schema().column(0).name, "size");
  EXPECT_EQ(cols.Value(1, 0), 1);
}

TEST(TableTest, EmpiricalDistribution) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({0, 0}).ok());
  ASSERT_TRUE(t.AppendRow({0, 0}).ok());
  ASSERT_TRUE(t.AppendRow({1, 1}).ok());
  ASSERT_TRUE(t.AppendRow({kMissing, 1}).ok());  // skipped
  const auto p = t.Empirical({0, 1});
  EXPECT_NEAR(p.Mass(), 1.0, 1e-12);
  EXPECT_NEAR(p[p.domain().Encode({0, 0})], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p[p.domain().Encode({1, 1})], 1.0 / 3.0, 1e-12);
}

TEST(TableTest, EncodeRowRespectsColumnOrder) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({2, 1}).ok());
  const prob::Domain d = t.schema().ToDomain({1, 0});
  size_t cell = 0;
  ASSERT_TRUE(t.EncodeRow(0, {1, 0}, d, &cell));
  EXPECT_EQ(d.Decode(cell), (std::vector<int>{1, 2}));
}

// ------------------------------------------------------------------- CSV --

TEST(CsvTest, ParseBasic) {
  const std::string csv = "a,b\nx,1\ny,2\nx,2\n";
  const auto t = ParseCsv(csv).value();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.schema().column(0).name, "a");
  EXPECT_EQ(t.Label(0, 0), "x");
  EXPECT_EQ(t.Value(2, 0), 0);  // "x" was first-seen -> code 0
}

TEST(CsvTest, ParseMissingTokens) {
  const std::string csv = "a,b\nx,?\n,1\n";
  const auto t = ParseCsv(csv).value();
  EXPECT_TRUE(t.IsMissing(0, 1));
  EXPECT_TRUE(t.IsMissing(1, 0));
}

TEST(CsvTest, ParseRejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvTest, ParseRejectsEmpty) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, ParseNoHeader) {
  CsvOptions opts;
  opts.has_header = false;
  const auto t = ParseCsv("p,q\nr,s\n", opts).value();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema().column(0).name, "c0");
}

TEST(CsvTest, ParseHandlesCrlf) {
  const auto t = ParseCsv("a,b\r\nx,y\r\n").value();
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Label(0, 1), "y");
}

TEST(CsvTest, RoundTripThroughString) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({0, 1}).ok());
  ASSERT_TRUE(t.AppendRow({kMissing, 0}).ok());
  const std::string s = ToCsvString(t);
  const auto back = ParseCsv(s).value();
  EXPECT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.Label(0, 0), "red");
  EXPECT_TRUE(back.IsMissing(1, 0));
}

TEST(CsvTest, FileRoundTrip) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1, 1}).ok());
  const std::string path = "/tmp/otclean_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  const auto back = ReadCsv(path).value();
  EXPECT_EQ(back.num_rows(), 1u);
  EXPECT_EQ(back.Label(0, 0), "green");
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadCsv("/nonexistent/nope.csv").status().code(),
            StatusCode::kIoError);
}

// ------------------------------------------------------------ Discretize --

TEST(DiscretizeTest, EqualWidthBins) {
  const std::vector<double> v = {0.0, 1.0, 2.0, 3.0, 4.0};
  const auto d =
      Discretizer::Fit(v, 4, BinningStrategy::kEqualWidth).value();
  EXPECT_EQ(d.num_bins(), 4u);
  EXPECT_EQ(d.Transform(0.0), 0);
  EXPECT_EQ(d.Transform(3.9), 3);
  EXPECT_EQ(d.Transform(4.0), 3);
  EXPECT_EQ(d.Transform(-100.0), 0);   // clamps
  EXPECT_EQ(d.Transform(100.0), 3);    // clamps
}

TEST(DiscretizeTest, QuantileBinsBalanceCounts) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  const auto d = Discretizer::Fit(v, 4, BinningStrategy::kQuantile).value();
  std::vector<int> counts(d.num_bins(), 0);
  for (double x : v) ++counts[static_cast<size_t>(d.Transform(x))];
  for (int c : counts) EXPECT_NEAR(c, 25, 1);
}

TEST(DiscretizeTest, NanMapsToMissing) {
  const auto d =
      Discretizer::Fit({1.0, 2.0}, 2, BinningStrategy::kEqualWidth).value();
  EXPECT_EQ(d.Transform(std::nan("")), kMissing);
}

TEST(DiscretizeTest, ConstantColumnOneBin) {
  const auto d =
      Discretizer::Fit({5.0, 5.0, 5.0}, 4, BinningStrategy::kEqualWidth)
          .value();
  EXPECT_EQ(d.num_bins(), 1u);
  EXPECT_EQ(d.Transform(5.0), 0);
}

TEST(DiscretizeTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(Discretizer::Fit({}, 3, BinningStrategy::kEqualWidth).ok());
  EXPECT_FALSE(Discretizer::Fit({1.0}, 0, BinningStrategy::kEqualWidth).ok());
  EXPECT_FALSE(Discretizer::Fit({std::nan("")}, 2,
                                BinningStrategy::kEqualWidth)
                   .ok());
}

TEST(DiscretizeTest, DiscretizeColumnProducesCodesAndLabels) {
  const auto dc = DiscretizeColumn("height", {1.0, 2.0, 3.0, std::nan("")}, 2,
                                   BinningStrategy::kEqualWidth)
                      .value();
  EXPECT_EQ(dc.column.name, "height");
  EXPECT_EQ(dc.column.cardinality(), 2u);
  EXPECT_EQ(dc.codes.size(), 4u);
  EXPECT_EQ(dc.codes[0], 0);
  EXPECT_EQ(dc.codes[2], 1);
  EXPECT_EQ(dc.codes[3], kMissing);
}

}  // namespace
}  // namespace otclean::dataset
