// Batch-repair throughput bench: jobs/sec for 1→N concurrent repair jobs
// through core::RepairScheduler on ONE shared 8-lane ThreadPool, vs the
// same N jobs solved sequentially (the pre-scheduler serving model: one
// job at a time, same shared pool).
//
// The win comes from where single-solve parallelism is weakest: a small
// repair's kernels sit below the parallel grain, so a lone job leaves
// every other lane idle — concurrent jobs fill them. Per-job results must
// be BIT-IDENTICAL to the sequential run at every concurrency level (the
// scheduler derives each job's seed from its stable id, never from
// scheduling); any mismatch fails the run.
//
// Results are printed as a table and written to BENCH_batch_repair.json.
//
// Flags:
//   --full     larger tables and more jobs
//   --smoke    tiny grid, one reliable reason: CI smoke mode

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"

using namespace otclean;

namespace {

struct LevelResult {
  size_t concurrency = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  double speedup = 1.0;  ///< vs the sequential (concurrency 1) run.
};


void WriteJson(const std::string& path, size_t num_jobs, size_t pool_lanes,
               const std::vector<LevelResult>& levels, bool identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"batch_repair\",\n");
  std::fprintf(f, "  \"jobs\": %zu,\n", num_jobs);
  std::fprintf(f, "  \"pool_lanes\": %zu,\n", pool_lanes);
  std::fprintf(f, "  \"hardware_concurrency\": %zu,\n",
               linalg::ResolveThreadCount(0));
  std::fprintf(f, "  \"bit_identical_to_sequential\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"levels\": [\n");
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& r = levels[i];
    std::fprintf(f,
                 "    {\"concurrency\": %zu, \"seconds\": %.4f, "
                 "\"jobs_per_sec\": %.2f, \"speedup_vs_sequential\": %.2f}%s\n",
                 r.concurrency, r.seconds, r.jobs_per_sec, r.speedup,
                 i + 1 < levels.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const size_t num_jobs = full ? 16 : 8;
  const size_t pool_lanes = 8;

  bench::PrintHeader(
      "Batch repair: concurrent jobs on one shared pool vs sequential",
      "N concurrent repairs off one process approach Nx jobs/sec while "
      "every job stays bit-identical to its sequential run");

  // Two datasets, varied job options — a realistic mixed queue. Small
  // domains on purpose: these are the jobs whose kernels cannot saturate
  // a pool alone, so concurrency (not per-solve threading) is the only
  // way to fill the lanes.
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = smoke ? 400 : (full ? 4000 : 1500);
  gen.num_z_attrs = 2;
  gen.z_card = 3;
  gen.violation = 0.6;
  gen.seed = 11;
  const auto table_a = datagen::MakeScalingDataset(gen).value();
  gen.seed = 12;
  gen.violation = 0.4;
  const auto table_b = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0", "z1"});

  std::vector<core::RepairJob> jobs;
  for (size_t i = 0; i < num_jobs; ++i) {
    core::RepairJob job;
    job.table = i % 2 == 0 ? &table_a : &table_b;
    job.constraints = {ci};
    job.options = bench::BenchRepairOptions();
    job.options.seed = 100 + i % 4;   // seed reuse is fine: ids decorrelate
    job.options.fast.epsilon = i % 3 == 0 ? 0.05 : 0.08;
    // Every job requests the full 8-lane decomposition in BOTH modes: the
    // sequential baseline is "one job at a time, parallelized across the
    // whole pool" — the strongest serving model the pre-scheduler code
    // supported — and fixing num_threads keeps the chunk decomposition
    // (hence bit-identity) independent of the machine.
    job.options.fast.num_threads = pool_lanes;
    jobs.push_back(std::move(job));
  }

  std::printf("# jobs: %zu, pool lanes: %zu, hardware threads: %zu\n",
              num_jobs, pool_lanes, linalg::ResolveThreadCount(0));
  std::printf("%-12s %-10s %-12s %-10s\n", "concurrency", "seconds",
              "jobs_per_s", "speedup");

  bool identical = true;
  std::vector<LevelResult> levels;
  core::BatchReport sequential;
  std::vector<size_t> concurrencies{1, 2, 4, 8};
  if (full) concurrencies.push_back(16);
  for (const size_t c : concurrencies) {
    core::RepairSchedulerOptions sched;
    sched.max_concurrent_jobs = c;
    sched.pool_threads = pool_lanes;
    core::RepairScheduler scheduler(sched);
    // Warm-up pass: pool workers start and tables fault in outside the
    // measured run, so every level times steady-state serving throughput.
    scheduler.Run(jobs);
    core::BatchReport report = scheduler.Run(jobs);

    LevelResult level;
    level.concurrency = c;
    level.seconds = report.wall_seconds;
    level.jobs_per_sec = report.jobs_per_second;
    if (c == 1) {
      sequential = std::move(report);
      level.speedup = 1.0;
    } else {
      level.speedup = level.jobs_per_sec *
                      (sequential.wall_seconds /
                       static_cast<double>(jobs.size()));
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (!report.jobs[i].ok() || !sequential.jobs[i].ok() ||
            !report.jobs[i]->repaired.SameContents(sequential.jobs[i]->repaired) ||
            report.jobs[i]->transport_cost !=
                sequential.jobs[i]->transport_cost) {
          identical = false;
          std::fprintf(stderr,
                       "MISMATCH: job %zu at concurrency %zu diverged from "
                       "the sequential run\n",
                       i, c);
        }
      }
    }
    std::printf("%-12zu %-10.3f %-12.2f %-10.2f\n", level.concurrency,
                level.seconds, level.jobs_per_sec, level.speedup);
    levels.push_back(level);
  }

  WriteJson("BENCH_batch_repair.json", num_jobs, pool_lanes, levels,
            identical);
  std::printf("# bit-identical to sequential = %s\n",
              identical ? "yes" : "NO");
  bool throughput_ok = true;
  const size_t hw = linalg::ResolveThreadCount(0);
  if (hw < 2) {
    std::printf(
        "# note: 1 hardware thread — concurrency cannot beat sequential "
        "here; speedup is meaningful on multi-core machines\n");
  } else if (!smoke && hw >= pool_lanes) {
    // On hardware with a core per lane the scheduler must actually pay
    // off: >= 2x jobs/sec with all lanes full of concurrent jobs.
    // Smoke mode and smaller machines only report the number.
    for (const LevelResult& level : levels) {
      if (level.concurrency == pool_lanes && level.speedup < 2.0) {
        throughput_ok = false;
        std::fprintf(stderr,
                     "THROUGHPUT: %.2fx at concurrency %zu on %zu cores — "
                     "expected >= 2x\n",
                     level.speedup, level.concurrency, hw);
      }
    }
  }
  return identical && throughput_ok ? 0 : 1;
}
