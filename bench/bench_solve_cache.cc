// Cross-request solve-cache bench: jobs/sec and total Sinkhorn iterations
// for a repeated-key batch served three ways through core::RepairScheduler —
//
//   off            no cache (pre-cache serving model)
//   kernel         SolveCache with kernel reuse only (the always-on tier:
//                  hits are bit-identical to misses)
//   kernel+warm    kernel reuse + cross-request warm starts
//                  (--cache-warm; converges to the same tolerance in fewer
//                  Sinkhorn iterations, not bit-identical)
//
// The batch repeats a handful of distinct (table, ε, truncation) keys many
// times — the serving pattern the cache exists for (one tenant's nightly
// repairs, a dashboard re-solving on refresh). Kernel construction streams
// all rows×cols costs even when truncation keeps the kernel sparse, so on
// repeated keys the build dominates and reuse pays regardless of core
// count. Kernel-reuse results must stay bit-identical to the cache-off run
// job for job; any mismatch fails the bench, as does a kernel-reuse
// speedup below 1.5x or warm starts failing to save iterations.
//
// Results are printed as a table and written to BENCH_solve_cache.json.
//
// Flags:
//   --full     larger tables and more repeats
//   --smoke    tiny grid, one reliable reason: CI smoke mode

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace otclean;

namespace {

struct LevelResult {
  std::string mode;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  double speedup = 1.0;  ///< vs the cache-off run.
  size_t sinkhorn_iterations = 0;
  size_t kernel_hits = 0;
  size_t kernel_misses = 0;
  size_t warm_hits = 0;
  size_t warm_iterations_saved = 0;
  size_t bytes_cached = 0;
};

void WriteJson(const std::string& path, size_t num_jobs, size_t distinct_keys,
               const std::vector<LevelResult>& levels, bool identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"solve_cache\",\n");
  std::fprintf(f, "  \"jobs\": %zu,\n", num_jobs);
  std::fprintf(f, "  \"distinct_keys\": %zu,\n", distinct_keys);
  std::fprintf(f, "  \"hardware_concurrency\": %zu,\n",
               linalg::ResolveThreadCount(0));
  std::fprintf(f, "  \"kernel_reuse_bit_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"levels\": [\n");
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& r = levels[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"seconds\": %.4f, \"jobs_per_sec\": %.2f, "
        "\"speedup_vs_off\": %.2f, \"sinkhorn_iterations\": %zu, "
        "\"kernel_hits\": %zu, \"kernel_misses\": %zu, \"warm_hits\": %zu, "
        "\"warm_iterations_saved\": %zu, \"bytes_cached\": %zu}%s\n",
        r.mode.c_str(), r.seconds, r.jobs_per_sec, r.speedup,
        r.sinkhorn_iterations, r.kernel_hits, r.kernel_misses, r.warm_hits,
        r.warm_iterations_saved, r.bytes_cached,
        i + 1 < levels.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::PrintHeader(
      "Solve cache: repeated-key batches with kernel reuse and warm starts",
      "kernel reuse serves repeated keys bit-identically at >= 1.5x "
      "jobs/sec; warm starts additionally cut Sinkhorn iterations at equal "
      "tolerance");

  // Two tables x two option variants = 4 distinct cache keys, each repeated
  // `repeats` times. Wide z-attributes grow the domain (the rows x cols
  // cost stream the cache skips); truncation keeps the iterated kernel
  // sparse so construction dominates the solve.
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = smoke ? 400 : (full ? 8000 : 4000);
  gen.num_z_attrs = 2;
  gen.z_card = smoke ? 3 : 4;
  gen.num_w_attrs = smoke ? 2 : 3;
  gen.w_card = 6;
  gen.violation = 0.6;
  gen.seed = 21;
  const auto table_a = datagen::MakeScalingDataset(gen).value();
  gen.seed = 22;
  gen.violation = 0.4;
  const auto table_b = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0", "z1"});

  const size_t repeats = smoke ? 3 : (full ? 12 : 6);
  const size_t distinct_keys = 4;
  std::vector<core::RepairJob> jobs;
  for (size_t r = 0; r < repeats; ++r) {
    for (size_t k = 0; k < distinct_keys; ++k) {
      core::RepairJob job;
      job.table = k % 2 == 0 ? &table_a : &table_b;
      job.constraints = {ci};
      job.options = bench::BenchRepairOptions();
      // Clean the full joint (w-attributes included): the kernel streams
      // active_rows x |domain| costs at build, which is the work the cache
      // skips on repeated keys. Gentle lambda + loose-ish tolerances so
      // every job converges (warm starts only store converged potentials),
      // and an aggressive cutoff so iteration work stays O(small nnz).
      job.options.use_saturation = false;
      job.options.fast.epsilon = 0.3;
      job.options.fast.lambda = 2.0;
      job.options.fast.sinkhorn_tolerance = 1e-4;
      job.options.fast.outer_tolerance = 5e-3;
      job.options.fast.max_outer_iterations = 150;
      job.options.fast.max_sinkhorn_iterations = 1000;
      job.options.fast.kernel_truncation = k < 2 ? 1e-2 : 3e-3;
      job.options.fast.num_threads = 1;
      // One logical job id per (key, repeat): repeats are *re-requests* of
      // the same repair, so they share the id (and therefore the seed) —
      // exactly the case where results must not depend on the cache.
      job.options.seed = 100 + k;
      job.id = k;
      jobs.push_back(std::move(job));
    }
  }

  std::printf("# jobs: %zu (%zu distinct keys x %zu repeats), hardware "
              "threads: %zu\n",
              jobs.size(), distinct_keys, repeats,
              linalg::ResolveThreadCount(0));
  std::printf("%-14s %-10s %-12s %-10s %-12s %-18s\n", "mode", "seconds",
              "jobs_per_s", "speedup", "sink_iters", "hits/misses/warm");

  struct Mode {
    const char* name;
    size_t cache_bytes;
    bool warm;
  };
  const Mode modes[] = {
      {"off", 0, false},
      {"kernel", 512u << 20, false},
      {"kernel+warm", 512u << 20, true},
  };

  bool identical = true;
  std::vector<LevelResult> levels;
  for (const Mode& mode : modes) {
    core::RepairSchedulerOptions sched;
    sched.max_concurrent_jobs = 1;  // isolate cache wins from concurrency
    sched.pool_threads = 1;
    sched.cache_bytes = mode.cache_bytes;
    core::RepairScheduler scheduler(sched);

    std::vector<core::RepairJob> batch = jobs;
    for (core::RepairJob& job : batch) {
      job.options.fast.cache_warm_start = mode.warm;
    }

    // Warm-up pass: pool startup and table fault-in leave the timing; for
    // the cached modes it also pre-populates the cache, so the measured
    // pass times *steady-state* serving (every key resident).
    scheduler.Run(batch);
    core::BatchReport report = scheduler.Run(batch);
    if (report.failed_jobs != 0) {
      std::fprintf(stderr, "FAILED: %zu jobs failed in mode %s\n",
                   report.failed_jobs, mode.name);
      return 1;
    }

    LevelResult level;
    level.mode = mode.name;
    level.seconds = report.wall_seconds;
    level.jobs_per_sec = report.jobs_per_second;
    level.sinkhorn_iterations = report.total_sinkhorn_iterations;
    level.kernel_hits = report.cache.kernel_hits;
    level.kernel_misses = report.cache.kernel_misses;
    level.warm_hits = report.cache.warm_hits;
    level.warm_iterations_saved = report.cache.warm_iterations_saved;
    level.bytes_cached = report.cache.bytes_cached;
    if (levels.empty()) {
      level.speedup = 1.0;
    } else {
      level.speedup = level.jobs_per_sec / levels.front().jobs_per_sec;
    }

    // Kernel reuse must not change a single byte of any repair.
    if (!levels.empty() && !mode.warm) {
      // Compare against the cache-off run job for job (same seeds/ids).
      core::RepairSchedulerOptions plain;
      plain.max_concurrent_jobs = 1;
      plain.pool_threads = 1;
      core::RepairScheduler baseline_sched(plain);
      core::BatchReport baseline = baseline_sched.Run(jobs);
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (!report.jobs[i].ok() || !baseline.jobs[i].ok() ||
            !report.jobs[i]->repaired.SameContents(
                baseline.jobs[i]->repaired) ||
            report.jobs[i]->transport_cost !=
                baseline.jobs[i]->transport_cost) {
          identical = false;
          std::fprintf(stderr,
                       "MISMATCH: job %zu with kernel reuse diverged from "
                       "the cache-off run\n",
                       i);
        }
      }
    }

    std::printf("%-14s %-10.3f %-12.2f %-10.2f %-12zu %zu/%zu/%zu\n",
                level.mode.c_str(), level.seconds, level.jobs_per_sec,
                level.speedup, level.sinkhorn_iterations, level.kernel_hits,
                level.kernel_misses, level.warm_hits);
    levels.push_back(level);
  }

  WriteJson("BENCH_solve_cache.json", jobs.size(), distinct_keys, levels,
            identical);
  std::printf("# kernel reuse bit-identical to cache-off = %s\n",
              identical ? "yes" : "NO");

  bool gates_ok = true;
  // Gate 1: kernel reuse pays >= 1.5x on repeated keys. This is CPU work
  // saved, not parallelism — it must hold on any core count. (Smoke mode
  // only reports: tiny problems leave too little build work to amortize.)
  if (!smoke && levels[1].speedup < 1.5) {
    gates_ok = false;
    std::fprintf(stderr,
                 "SPEEDUP: kernel reuse %.2fx vs off — expected >= 1.5x\n",
                 levels[1].speedup);
  }
  // Gate 2: warm starts save measured Sinkhorn iterations at equal
  // tolerance (steady state: every key has stored potentials).
  if (!smoke && (levels[2].sinkhorn_iterations >=
                     levels[0].sinkhorn_iterations ||
                 levels[2].warm_iterations_saved == 0)) {
    gates_ok = false;
    std::fprintf(stderr,
                 "WARMSTART: %zu iterations vs %zu cache-off, %zu saved — "
                 "expected a reduction\n",
                 levels[2].sinkhorn_iterations, levels[0].sinkhorn_iterations,
                 levels[2].warm_iterations_saved);
  }
  return identical && gates_ok ? 0 : 1;
}
