// Ablation: the FastOTClean hyperparameters ε (entropic regularization) and
// λ (marginal relaxation) — Section 6.1 notes that growing λ and 1/ε moves
// the objective closer to true OT at the price of slower convergence.
//
// Expected shape: transport cost decreases as ε shrinks; Sinkhorn
// iterations grow as ε shrinks or λ grows; the repair quality (residual
// empirical CMI after sampling) is robust across the grid.

#include "bench_common.h"

using namespace otclean;

int main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Ablation: epsilon / lambda grid (Section 6.1 tuning)",
      "smaller eps -> lower cost, more iterations; larger lambda -> "
      "stricter marginals, more iterations");

  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 3000;
  gen.num_z_attrs = 2;
  gen.z_card = 3;
  gen.violation = 0.5;
  gen.seed = 171;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0", "z1"});

  const std::vector<double> epsilons =
      full ? std::vector<double>{0.02, 0.05, 0.1, 0.2, 0.5}
           : std::vector<double>{0.05, 0.1, 0.5};
  const std::vector<double> lambdas =
      full ? std::vector<double>{1.0, 5.0, 20.0, 80.0}
           : std::vector<double>{5.0, 80.0};

  std::printf("%-8s %-8s | %-10s %-12s %-12s %-10s\n", "eps", "lambda",
              "cost", "final_CMI", "sink_iters", "time(s)");
  for (const double eps : epsilons) {
    for (const double lambda : lambdas) {
      core::RepairOptions opts;
      opts.fast.epsilon = eps;
      opts.fast.lambda = lambda;
      opts.fast.max_outer_iterations = 40;
      opts.fast.max_sinkhorn_iterations = 2000;
      opts.fast.outer_tolerance = 1e-6;
      WallTimer timer;
      const auto r = core::RepairTable(table, ci, opts);
      if (!r.ok()) {
        std::printf("%-8.2f %-8.0f | failed: %s\n", eps, lambda,
                    r.status().ToString().c_str());
        continue;
      }
      std::printf("%-8.2f %-8.0f | %-10.4f %-12.5f %-12zu %-10.2f\n", eps,
                  lambda, r->transport_cost, r->final_cmi,
                  r->total_sinkhorn_iterations, timer.ElapsedSeconds());
    }
  }
  return 0;
}
