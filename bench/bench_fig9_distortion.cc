// Figure 9: statistical-distortion evaluation (Dasu & Loh) — for bootstrap
// replications of a noisy Car dataset, plot the EMD each cleaning method
// introduces against the AUC improvement it buys.
//
// Reproduction target: OTClean points sit to the right of BARAN's (larger
// AUC improvement) at a modestly higher EMD; the Clean reference has the
// highest improvement.

#include "bench_cleaning.h"

using namespace otclean;

int OTCLEAN_BENCH_MAIN(fig9_distortion) {
  const bool full = bench::FullScale(argc, argv);
  const size_t replications = full ? 100 : 10;

  bench::PrintHeader(
      "Figure 9: statistical distortion (EMD vs AUC improvement)",
      "OTClean: bigger AUC gains than BARAN at slightly higher EMD");

  auto setup = bench::MakeCleaningSetup(
      datagen::MakeCar(full ? 1728 : 1200, 91).value(), "doors");
  const auto dirty_base = bench::MakeDirtyTrain(setup, 0.6, 92);

  // EMD columns: the constraint's X/Y plus one conditioning attribute, so
  // the exact-OT LP stays small (full-domain EMD is the same computation on
  // a larger support).
  const auto& schema = setup.bundle.table.schema();
  const std::vector<size_t> emd_cols = {
      schema.ColumnIndex("doors").value(), schema.ColumnIndex("class").value(),
      schema.ColumnIndex("safety").value()};

  const double auc_dirty = bench::Evaluate(setup, dirty_base).auc;
  std::printf("dirty baseline AUC=%.3f; %zu replications\n", auc_dirty,
              replications);
  std::printf("%-6s %-10s %-12s %-12s %-12s %-12s\n", "rep", "method", "EMD",
              "AUC", "dAUC(%)", "");

  Rng rng(93);
  double mean_emd[2] = {0, 0}, mean_dauc[2] = {0, 0};
  for (size_t rep = 0; rep < replications; ++rep) {
    const auto dirty =
        cleaning::BootstrapSample(dirty_base, dirty_base.num_rows(), rng);

    const auto baran = bench::BaranRepairTrain(setup, dirty).value();
    const auto otclean =
        bench::OtCleanRepairTrain(setup, dirty, false).value();

    struct Entry {
      const char* name;
      const dataset::Table* table;
      int idx;
    };
    for (const Entry& e : {Entry{"BARAN", &baran, 0},
                           Entry{"OTClean", &otclean, 1}}) {
      const double emd =
          cleaning::TableEmd(dirty, *e.table, emd_cols).value_or(-1.0);
      const double auc = bench::Evaluate(setup, *e.table).auc;
      const double dauc = (auc - auc_dirty) * 100.0;
      mean_emd[e.idx] += emd;
      mean_dauc[e.idx] += dauc;
      std::printf("%-6zu %-10s %-12.4f %-12.3f %-+12.2f\n", rep, e.name, emd,
                  auc, dauc);
    }
  }
  const double n = static_cast<double>(replications);
  std::printf("\nmeans: BARAN   EMD=%.4f dAUC=%+.2f%%\n", mean_emd[0] / n,
              mean_dauc[0] / n);
  std::printf("means: OTClean EMD=%.4f dAUC=%+.2f%%\n", mean_emd[1] / n,
              mean_dauc[1] / n);
  std::printf("# reproduced: OTClean dAUC > BARAN dAUC = %s\n",
              mean_dauc[1] > mean_dauc[0] ? "yes" : "NO");
  return 0;
}
