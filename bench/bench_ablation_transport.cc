// Ablation: exact-OT solver choice — the specialized network-simplex (MODI)
// transportation solver versus the dense two-phase simplex, with entropic
// Sinkhorn as the approximate reference.
//
// Expected shape: both exact solvers agree on the optimum; the network
// simplex is orders of magnitude faster as the instance grows; Sinkhorn is
// fastest but returns a slightly inflated (entropy-regularized) cost.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lp/network_simplex.h"
#include "lp/transport_lp.h"

using namespace otclean;

namespace {

struct Instance {
  linalg::Matrix cost;
  linalg::Vector p, q;
};

Instance MakeInstance(size_t n, uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.cost = linalg::Matrix(n, n);
  for (double& v : inst.cost.data()) v = rng.NextDouble();
  inst.p = linalg::Vector(n);
  inst.q = linalg::Vector(n);
  for (size_t i = 0; i < n; ++i) {
    inst.p[i] = 0.05 + rng.NextDouble();
    inst.q[i] = 0.05 + rng.NextDouble();
  }
  inst.p.Normalize();
  inst.q.Normalize();
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Ablation: transport solvers (network simplex vs dense simplex vs "
      "Sinkhorn)",
      "equal exact optima; network simplex >> dense simplex in speed; "
      "Sinkhorn fastest, cost slightly above exact");

  std::printf("%-6s | %-10s %-10s | %-10s %-10s | %-10s %-10s\n", "n",
              "net_cost", "net_t(s)", "dense_cost", "dense_t(s)", "sink_cost",
              "sink_t(s)");
  std::vector<size_t> sizes = {5, 10, 20, 30};
  if (full) {
    sizes.push_back(50);
    sizes.push_back(80);
  }
  for (const size_t n : sizes) {
    const Instance inst = MakeInstance(n, 181 + n);

    WallTimer t1;
    const auto net = lp::SolveTransportNetwork(inst.cost, inst.p, inst.q);
    const double net_time = t1.ElapsedSeconds();

    double dense_cost = -1.0, dense_time = -1.0;
    if (n <= 30) {  // dense tableau grows as (2n)·(n²); cap for sanity
      WallTimer t2;
      const auto dense = lp::SolveTransport(inst.cost, inst.p, inst.q);
      dense_time = t2.ElapsedSeconds();
      if (dense.ok()) dense_cost = dense->cost;
    }

    ot::SinkhornOptions so;
    so.epsilon = 0.02;
    so.max_iterations = 5000;
    WallTimer t3;
    const auto sink = ot::RunSinkhorn(inst.cost, inst.p, inst.q, so);
    const double sink_time = t3.ElapsedSeconds();

    std::printf("%-6zu | %-10.5f %-10.4f | %-10.5f %-10.4f | %-10.5f %-10.4f\n",
                n, net.ok() ? net->cost : -1.0, net_time, dense_cost,
                dense_time, sink.ok() ? sink->transport_cost : -1.0,
                sink_time);
  }
  return 0;
}
