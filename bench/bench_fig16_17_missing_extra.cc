// Figures 16 & 17: the appendix missing-value grids — MNAR on Boston and
// MAR on Car, for the kNN and most-frequent imputers, with and without
// OTClean post-processing.
//
// Reproduction target: OTClean-<imputer> consistently improves over
// Dirty-<imputer>; the MF imputer at high MNAR rates remains the hardest
// case (as the paper notes for Fig. 16b/17b).

#include "bench_cleaning.h"

using namespace otclean;

namespace {

void RunGrid(bench::CleaningSetup& setup, cleaning::MissingMechanism mech,
             const char* title, const std::vector<double>& rates,
             uint64_t seed) {
  std::printf("\n-- %s --\n", title);
  const auto clean_result = bench::Evaluate(setup, setup.train_clean);
  std::printf("Clean baseline: AUC=%.3f\n", clean_result.auc);

  cleaning::KnnImputer knn;
  cleaning::MostFrequentImputer mf;
  struct Entry {
    const char* name;
    cleaning::Imputer* imputer;
  };
  for (const Entry& entry : {Entry{"kNN", &knn}, Entry{"MF", &mf}}) {
    std::printf("%-12s %-10s %-12s\n", entry.name, "Dirty-AUC",
                "OTClean-AUC");
    for (const double rate : rates) {
      const auto dirty =
          bench::ImputedTrain(setup, mech, rate, seed, *entry.imputer, false);
      const auto fixed =
          bench::ImputedTrain(setup, mech, rate, seed, *entry.imputer, true);
      std::printf("rate=%-6.0f %-10.3f %-12.3f\n", rate * 100,
                  bench::Evaluate(setup, dirty.value()).auc,
                  bench::Evaluate(setup, fixed.value()).auc);
    }
  }
}

}  // namespace

int OTCLEAN_BENCH_MAIN(fig16_17_missing_extra) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader("Figures 16/17: MNAR Boston & MAR Car (kNN / MF)",
                     "OTClean-<imputer> above Dirty-<imputer> throughout");

  const std::vector<double> rates =
      full ? std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
           : std::vector<double>{0.2, 0.4, 0.6};

  auto boston = bench::MakeCleaningSetup(
      datagen::MakeBoston(full ? 2000 : 1400, 161).value(), "B");
  RunGrid(boston, cleaning::MissingMechanism::kMnar,
          "Figure 16: MNAR on Boston", rates, 162);

  auto car = bench::MakeCleaningSetup(
      datagen::MakeCar(full ? 1728 : 1400, 163).value(), "doors");
  RunGrid(car, cleaning::MissingMechanism::kMar, "Figure 17: MAR on Car",
          rates, 164);
  return 0;
}
