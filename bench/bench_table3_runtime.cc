// Table 3: wall-clock runtime of the fairness repairs per method. Absolute
// numbers differ from the paper's testbed; the reproduction targets are the
// orderings: FastOTClean costs more than Cap(MF)/Cap(IC) but stays
// practical, and Cap(MS) is the slowest of the Capuchin family.

#include "bench_common.h"

using namespace otclean;

namespace {

double TimeTransform(const dataset::Table& table,
                     const std::function<Result<dataset::Table>(
                         const dataset::Table&)>& transform) {
  WallTimer timer;
  const auto r = transform(table);
  if (!r.ok()) return -1.0;
  return timer.ElapsedSeconds();
}

void RunDataset(const datagen::DatasetBundle& bundle, bool include_qclp) {
  std::printf("\n-- %s (n=%zu) --\n", bundle.name.c_str(),
              bundle.table.num_rows());
  std::printf("%-16s %-12s\n", "method", "seconds");

  const auto& table = bundle.table;
  const auto u_cols = bundle.constraint.ResolveColumns(table.schema()).value();
  const size_t u_arity = u_cols.size();
  std::vector<size_t> frozen = {0};
  for (size_t i = 1 + bundle.inadmissible_cols.size(); i < u_arity; ++i) {
    frozen.push_back(i);
  }

  auto print_row = [](const char* name, double sec) {
    if (sec < 0) {
      std::printf("%-16s %-12s\n", name, "failed");
    } else {
      std::printf("%-16s %-12.2f\n", name, sec);
    }
  };

  print_row("FastOTClean-C1",
            TimeTransform(table, [&](const dataset::Table& t)
                                     -> Result<dataset::Table> {
              core::RepairOptions opts = bench::BenchRepairOptions();
              ot::FairnessCost cost(frozen, u_arity);
              OTCLEAN_ASSIGN_OR_RETURN(
                  core::RepairReport r,
                  core::RepairTable(t, bundle.constraint, opts, &cost));
              return std::move(r).repaired;
            }));
  print_row("Cap(MF)", TimeTransform(table, [&](const dataset::Table& t) {
              fairness::CapuchinOptions opts;
              opts.method = fairness::CapuchinMethod::kMatrixFactorization;
              return fairness::CapuchinRepair(t, bundle.constraint, opts);
            }));
  print_row("Cap(IC)", TimeTransform(table, [&](const dataset::Table& t) {
              fairness::CapuchinOptions opts;
              opts.method = fairness::CapuchinMethod::kIndependentCoupling;
              return fairness::CapuchinRepair(t, bundle.constraint, opts);
            }));
  print_row("Cap(MS)", TimeTransform(table, [&](const dataset::Table& t)
                                         -> Result<dataset::Table> {
              fairness::CapMaxSatOptions opts;
              opts.maxsat.max_flips = 60000;
              opts.maxsat.restarts = 1;
              OTCLEAN_ASSIGN_OR_RETURN(
                  fairness::CapMaxSatReport r,
                  fairness::CapMaxSatRepair(t, bundle.constraint, opts));
              return std::move(r).repaired;
            }));
  if (include_qclp) {
    print_row("QCLP", TimeTransform(table, [&](const dataset::Table& t)
                                                -> Result<dataset::Table> {
                core::RepairOptions opts;
                opts.solver = core::Solver::kQclp;
                opts.qclp.max_outer_iterations = 8;
                opts.qclp.restrict_columns_to_active = true;
                ot::FairnessCost cost(frozen, u_arity);
                OTCLEAN_ASSIGN_OR_RETURN(
                    core::RepairReport r,
                    core::RepairTable(t, bundle.constraint, opts, &cost));
                return std::move(r).repaired;
              }));
  } else {
    std::printf("%-16s %-12s\n", "QCLP", "NA (domain too large, as in paper)");
  }
}

}  // namespace

int OTCLEAN_BENCH_MAIN(table3_runtime) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Table 3: fairness-repair runtime (seconds)",
      "paper: Adult FastOTClean 1229s, MF/IC 66s, MS 700s, QCLP NA; "
      "COMPAS FastOTClean 848s, MF/IC ~7s, MS 1227s, QCLP 2s");

  const auto adult = datagen::MakeAdult(full ? 48842 : 4000, 41).value();
  RunDataset(adult, /*include_qclp=*/false);
  const auto compas = datagen::MakeCompas(full ? 10000 : 4000, 42).value();
  RunDataset(compas, /*include_qclp=*/true);
  return 0;
}
