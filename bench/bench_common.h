#ifndef OTCLEAN_BENCH_BENCH_COMMON_H_
#define OTCLEAN_BENCH_BENCH_COMMON_H_

// Shared plumbing for the experiment harnesses that regenerate the paper's
// tables and figures. Each bench binary prints the paper's reported shape
// (as a comment) followed by measured rows in the same layout. Pass
// `--full` for the paper-scale grid (slower); the default grid is reduced
// so the whole suite runs in minutes.

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "otclean/otclean.h"

// Entry-point naming for the paper-figure suite. Standalone builds keep a
// real `main`, so every bench_fig*/bench_table* file stays an individually
// runnable binary. The combined `bench_figures` harness compiles the same
// files with OTCLEAN_BENCH_FIGURES_COMBINED defined, renaming each entry
// point to RunBench_<name> so one driver can run the whole suite and emit
// a single BENCH_figures.json. Usage in a bench file:
//   int OTCLEAN_BENCH_MAIN(fig1_regularization) { ... }
#ifdef OTCLEAN_BENCH_FIGURES_COMBINED
#define OTCLEAN_BENCH_MAIN(name) RunBench_##name(int argc, char** argv)
#else
#define OTCLEAN_BENCH_MAIN(name) main(int argc, char** argv)
#endif

namespace otclean::bench {

/// True when the binary was invoked with --full.
inline bool FullScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  return false;
}

inline void PrintHeader(const char* experiment, const char* paper_shape) {
  std::printf("\n==== %s ====\n", experiment);
  std::printf("# paper shape: %s\n", paper_shape);
}

/// FastOTClean options sized for the reduced bench grids: iteration caps
/// keep large domains tractable while preserving the algorithmic path.
inline core::RepairOptions BenchRepairOptions() {
  core::RepairOptions opts;
  opts.fast.epsilon = 0.08;
  opts.fast.lambda = 80.0;
  opts.fast.max_outer_iterations = 40;
  opts.fast.outer_tolerance = 1e-6;
  opts.fast.max_sinkhorn_iterations = 400;
  opts.fast.sinkhorn_tolerance = 1e-8;
  opts.fast.restrict_columns_to_active = true;
  return opts;
}

/// The evaluation protocol of Section 6.2/6.3: per-fold training-data
/// transformation + cross-validated logistic regression.
struct PipelineResult {
  double auc = 0.0;
  double f1 = 0.0;
  std::vector<double> oof_scores;
};

inline Result<PipelineResult> RunPipeline(
    const dataset::Table& table, size_t label_col,
    const std::vector<size_t>& features, const ml::TrainTransform& transform,
    size_t folds = 3, uint64_t seed = 1234) {
  ml::CrossValidationOptions cv;
  cv.num_folds = folds;
  cv.seed = seed;
  OTCLEAN_ASSIGN_OR_RETURN(
      ml::CrossValidationResult r,
      ml::CrossValidate(table, label_col, features,
                        [] { return std::make_unique<ml::LogisticRegression>(); },
                        cv, transform));
  PipelineResult out;
  out.auc = r.mean_auc;
  out.f1 = r.mean_f1;
  out.oof_scores = std::move(r.oof_scores);
  return out;
}

/// Holdout evaluation against a clean test set (the Fig. 6–8 protocol).
inline Result<ml::HoldoutResult> EvalOnCleanTest(
    const dataset::Table& train, const dataset::Table& test, size_t label_col,
    const std::vector<size_t>& features) {
  return ml::TrainAndEvaluate(
      train, test, label_col, features,
      [] { return std::make_unique<ml::LogisticRegression>(); });
}

}  // namespace otclean::bench

#endif  // OTCLEAN_BENCH_BENCH_COMMON_H_
