// Plan-storage + execution-engine bench for the sparse end-to-end path:
//
//   1. End-to-end FastOTClean, dense vs truncated-sparse kernel: kernel
//      nonzeros, the fitted plan's storage (entries / bytes — CSR keeps
//      exactly the kernel support, dense pays rows×cols), and wall time.
//   2. Pooled vs spawn-per-call kernel dispatch at small plan sizes, where
//      thread startup dominates the arithmetic: the same Sinkhorn scaling
//      loop on the same kernel, with and without a persistent ThreadPool.
//
// Cross-checks that sparse results match dense (cost within tolerance) and
// that pooled potentials are bit-identical to spawned ones — a silent
// mismatch fails the run.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "linalg/thread_pool.h"

using namespace otclean;

namespace {

linalg::Matrix RandomCost(size_t m, size_t n, Rng& rng) {
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * 3.0;
  return cost;
}

linalg::Vector RandomMarginal(size_t n, Rng& rng) {
  linalg::Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
  v.Normalize();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bool ok = true;

  // ---- 1. End-to-end FastOTClean: dense vs sparse plan storage. ----
  bench::PrintHeader(
      "Plan storage: dense vs CSR through FastOTClean + repair",
      "sparse plans cut kernel/plan memory by the truncation factor at "
      "unchanged repair quality (Section 6.5)");

  datagen::ScalingDatasetOptions gen;
  gen.num_rows = full ? 8000 : 3000;
  gen.num_z_attrs = full ? 4 : 3;
  gen.z_card = 3;
  gen.violation = 0.5;
  gen.seed = 7;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci(
      {"x"}, {"y"},
      [&] {
        std::vector<std::string> zs;
        for (size_t i = 0; i < gen.num_z_attrs; ++i) {
          zs.push_back("z" + std::to_string(i));
        }
        return zs;
      }());

  std::printf("%-10s %-12s %-12s %-14s %-10s %-10s\n", "storage",
              "kernel_nnz", "plan_nnz", "plan_KiB", "cost", "time(s)");
  double dense_cost = 0.0;
  for (const double cutoff : {0.0, 1e-8}) {
    core::RepairOptions options;
    options.fast.epsilon = 0.1;
    options.fast.max_outer_iterations = 40;
    options.fast.max_sinkhorn_iterations = 1000;
    options.fast.kernel_truncation = cutoff;
    WallTimer timer;
    const auto report = core::RepairTable(table, ci, options);
    if (!report.ok()) {
      std::printf("%-10s failed: %s\n", cutoff > 0.0 ? "sparse" : "dense",
                  report.status().ToString().c_str());
      ok = false;
      continue;
    }
    if (cutoff == 0.0) {
      dense_cost = report->transport_cost;
    } else if (std::fabs(report->transport_cost - dense_cost) > 0.05) {
      ok = false;
    }
    std::printf("%-10s %-12zu %-12zu %-14.1f %-10.4f %-10.2f\n",
                report->plan_sparse ? "sparse" : "dense", report->kernel_nnz,
                report->plan_nnz,
                static_cast<double>(report->plan_memory_bytes) / 1024.0,
                report->transport_cost, timer.ElapsedSeconds());
  }

  // ---- 2. Pooled vs spawn-per-call dispatch on small plans. ----
  bench::PrintHeader(
      "Execution: persistent ThreadPool vs spawn-per-call kernels",
      "pooled dispatch amortizes thread startup across all Sinkhorn "
      "iterations; the win is largest on small plans");

  // At least 2 so the dispatch machinery engages even on a 1-core box
  // (with 1 thread both modes run inline and measure the same thing).
  const size_t threads = std::max<size_t>(2, linalg::ResolveThreadCount(0));
  std::printf("# threads: %zu\n", threads);
  std::printf("%-8s %-10s %-12s %-12s %-10s %-10s\n", "size", "mode",
              "seconds", "iters", "iters_per_s", "speedup");
  Rng rng(13);
  const std::vector<size_t> sizes{64, 128, 256, full ? 1024u : 512u};
  for (const size_t n : sizes) {
    const linalg::Matrix cost = RandomCost(n, n, rng);
    const linalg::Vector p = RandomMarginal(n, rng);
    const linalg::Vector q = RandomMarginal(n, rng);
    ot::SinkhornOptions opts;
    opts.epsilon = 0.1;
    opts.relaxed = true;
    opts.lambda = 5.0;
    opts.tolerance = 1e-10;
    opts.num_threads = threads;

    double spawn_seconds = 0.0;
    ot::SinkhornScaling spawn_result;
    for (const bool pooled : {false, true}) {
      // Build the kernel outside the timer (shared by both modes); time
      // only the scaling loop the pool accelerates.
      linalg::ThreadPool pool(threads);
      const linalg::DenseTransportKernel kernel =
          linalg::DenseTransportKernel::FromCost(
              cost, opts.epsilon, threads, pooled ? &pool : nullptr);
      WallTimer timer;
      const auto scaling =
          ot::RunSinkhornScaling(kernel, p, q, opts).value();
      const double seconds = timer.ElapsedSeconds();
      if (!pooled) {
        spawn_seconds = seconds;
        spawn_result = scaling;
      } else if (!scaling.u.ApproxEquals(spawn_result.u, 0.0) ||
                 !scaling.v.ApproxEquals(spawn_result.v, 0.0) ||
                 scaling.iterations != spawn_result.iterations) {
        ok = false;
      }
      std::printf("%-8zu %-10s %-12.4f %-12zu %-10.0f %-10.2f\n", n,
                  pooled ? "pooled" : "spawn", seconds, scaling.iterations,
                  static_cast<double>(scaling.iterations) /
                      (seconds > 0.0 ? seconds : 1e-9),
                  pooled ? spawn_seconds / (seconds > 0.0 ? seconds : 1e-9)
                         : 1.0);
    }
  }
  std::printf("# cross-checks passed = %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
