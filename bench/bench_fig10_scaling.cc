// Figure 10: (a) FastOTClean runtime and memory versus constraint-domain
// size; (b) convergence of the outer loop with NMF versus random
// initialization of Q.
//
// Reproduction targets: (a) runtime/memory grow polynomially with the
// domain (the plan is |active| x |domain|), staying practical into the
// thousands of cells; (b) the objective decreases monotonically (Theorem
// 4.3) and the NMF initialization converges in fewer outer iterations.


#include "bench_common.h"

using namespace otclean;

namespace {

struct ScaleResult {
  size_t domain = 0;
  double seconds = 0.0;
  double megabytes = 0.0;
  size_t outer = 0;
};

ScaleResult RunOnce(size_t num_z, size_t z_card, size_t rows) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = rows;
  gen.num_z_attrs = num_z;
  gen.z_card = z_card;
  gen.violation = 0.5;
  gen.seed = 101;
  const auto table = datagen::MakeScalingDataset(gen).value();
  std::vector<std::string> zs;
  for (size_t i = 0; i < num_z; ++i) zs.push_back("z" + std::to_string(i));
  const core::CiConstraint ci({"x"}, {"y"}, zs);

  core::RepairOptions opts = bench::BenchRepairOptions();
  opts.fast.restrict_columns_to_active = false;  // full-domain columns
  core::OtCleanRepairer repairer(ci, opts);
  WallTimer timer;
  const auto status = repairer.Fit(table);
  ScaleResult out;
  out.seconds = timer.ElapsedSeconds();
  if (!status.ok()) return out;
  out.domain = repairer.CleanedDomain().TotalSize();
  const auto& plan = repairer.plan();
  // Three dense row x col matrices live during the solve: cost, kernel,
  // plan.
  out.megabytes = 3.0 * plan.row_cells().size() * plan.col_cells().size() *
                  sizeof(double) / 1e6;
  out.outer = repairer.fit_report().outer_iterations;
  return out;
}

}  // namespace

int OTCLEAN_BENCH_MAIN(fig10_scaling) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 10a: FastOTClean runtime & memory vs domain size",
      "polynomial growth; scales to thousands of cells (paper: 10^4 in "
      "~minutes, ~GBs)");

  std::printf("%-10s %-10s %-12s %-8s\n", "domain", "time(s)", "memory(MB)",
              "outer");
  struct Config {
    size_t num_z, z_card, rows;
  };
  std::vector<Config> configs = {{1, 3, 3000}, {2, 3, 3000}, {3, 3, 4000},
                                 {4, 3, 5000}};
  if (full) {
    configs.push_back({5, 3, 6000});
    configs.push_back({6, 3, 8000});
  }
  for (const auto& config : configs) {
    const auto r = RunOnce(config.num_z, config.z_card, config.rows);
    std::printf("%-10zu %-10.3f %-12.2f %-8zu\n", r.domain, r.seconds,
                r.megabytes, r.outer);
  }

  bench::PrintHeader(
      "Figure 10b: convergence, NMF vs random initialization",
      "objective decreases monotonically; NMF init needs ~30% fewer "
      "iterations");

  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 4000;
  gen.num_z_attrs = 2;
  gen.z_card = 3;
  gen.violation = 0.5;
  gen.seed = 102;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0", "z1"});
  const auto u_cols = ci.ResolveColumns(table.schema()).value();
  const auto p = table.Empirical(u_cols);
  const auto spec = ci.SpecInProjectedDomain();
  ot::EuclideanCost cost(u_cols.size());

  double nmf_start = 0.0;
  for (const bool nmf_init : {true, false}) {
    core::FastOtCleanOptions opts = bench::BenchRepairOptions().fast;
    opts.nmf_init = nmf_init;
    opts.max_outer_iterations = 300;
    opts.outer_tolerance = 1e-6;
    opts.max_sinkhorn_iterations = 50000;
    opts.sinkhorn_tolerance = 1e-9;
    // Moderate λ: large values pin the plan's target marginal to the
    // previous Q and stall outer progress (the paper tunes λ per dataset).
    opts.lambda = 5.0;
    Rng rng(103);
    const auto r = core::FastOtClean(p, spec, cost, opts, rng).value();
    bool monotone = true;
    for (size_t i = 1; i < r.objective_trace.size(); ++i) {
      if (r.objective_trace[i] > r.objective_trace[i - 1] + 1e-4) {
        monotone = false;
      }
    }
    std::printf("%-8s iterations=%-6zu final_cost=%-10.5f monotone=%s\n",
                nmf_init ? "NMF" : "Random", r.outer_iterations,
                r.transport_cost, monotone ? "yes" : "no");
    std::printf("  trace:");
    for (size_t i = 0; i < std::min<size_t>(8, r.objective_trace.size());
         ++i) {
      std::printf(" %.4f", r.objective_trace[i]);
    }
    std::printf(" ...\n");
    if (nmf_init) {
      nmf_start = r.objective_trace.empty() ? 0.0 : r.objective_trace[0];
    } else {
      // How many outer iterations the random start needs to reach the cost
      // level the NMF initialization provides for free — the paper's ~30%
      // iteration saving.
      size_t catch_up = r.objective_trace.size();
      for (size_t i = 0; i < r.objective_trace.size(); ++i) {
        if (r.objective_trace[i] <= nmf_start) {
          catch_up = i;
          break;
        }
      }
      std::printf("# reproduced: NMF init skips the first %zu outer "
                  "iterations of the random start\n",
                  catch_up);
    }
  }
  return 0;
}
