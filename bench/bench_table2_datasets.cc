// Table 2: dataset characteristics — #tuples, #attributes, average domain
// size, and the initial CMI of the experiment constraint.
//
// Our datasets are synthetic stand-ins with matching schemas (DESIGN.md §3),
// so #attr matches exactly, #tuples and avg-dom match approximately, and the
// initial CMI should be nonzero for Adult/COMPAS (planted violation) and
// near zero for Car/Boston (violations are injected later by the noise
// benches).

#include "bench_common.h"

using namespace otclean;

int OTCLEAN_BENCH_MAIN(table2_datasets) {
  const bool full = bench::FullScale(argc, argv);

  bench::PrintHeader("Table 2: dataset characteristics",
                     "Adult 48842/14/5.42/0.188, COMPAS 10000/12/2.4/0.055, "
                     "Car 1728/6/3.67/0.036, Boston 506/14/4.5/0.060");

  struct Row {
    datagen::DatasetBundle bundle;
    size_t paper_tuples;
    double paper_avg_dom;
    double paper_cmi;
  };
  std::vector<Row> rows;
  rows.push_back({datagen::MakeAdult(full ? 48842 : 6000, 1).value(), 48842,
                  5.42, 0.18770});
  rows.push_back({datagen::MakeCompas(full ? 10000 : 6000, 2).value(), 10000,
                  2.4, 0.05484});
  rows.push_back({datagen::MakeCar(1728, 3).value(), 1728, 3.67, 0.03617});
  rows.push_back({datagen::MakeBoston(506, 4).value(), 506, 4.5, 0.05983});

  std::printf("%-8s %-9s %-7s %-9s %-11s %-11s\n", "dataset", "#tuples",
              "#attr", "avg.dom", "init.CMI", "paper.CMI");
  for (const auto& row : rows) {
    const auto& b = row.bundle;
    const double cmi = core::TableCmi(b.table, b.constraint).value();
    std::printf("%-8s %-9zu %-7zu %-9.2f %-11.5f %-11.5f\n", b.name.c_str(),
                b.table.num_rows(), b.table.num_columns(),
                b.table.schema().ToDomain().AverageCardinality(), cmi,
                row.paper_cmi);
  }
  std::printf(
      "# note: Car/Boston constraints hold approximately when clean (the\n"
      "# paper's CMI there reflects mild real-data violations); the noise\n"
      "# benches inject the violations those experiments repair.\n");
  return 0;
}
