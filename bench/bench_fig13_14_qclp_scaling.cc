// Figures 13 & 14: FastOTClean versus the exact QCLP solver as the
// constraint domain grows — runtime (Fig. 13) and memory (Fig. 14).
//
// Reproduction targets: QCLP is competitive (even faster) on the smallest
// domains but its dense LP tableau grows so fast that it becomes
// impractical, while FastOTClean keeps scaling; QCLP always needs more
// memory.

#include "bench_common.h"

using namespace otclean;

namespace {

struct Point {
  size_t domain = 0;
  double fast_sec = -1.0, qclp_sec = -1.0;
  double fast_mb = 0.0, qclp_mb = 0.0;
};

Point RunOnce(size_t num_z, size_t z_card, bool run_qclp) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 1500;
  gen.num_z_attrs = num_z;
  gen.z_card = z_card;
  gen.violation = 0.5;
  gen.seed = 131;
  const auto table = datagen::MakeScalingDataset(gen).value();
  std::vector<std::string> zs;
  for (size_t i = 0; i < num_z; ++i) zs.push_back("z" + std::to_string(i));
  const core::CiConstraint ci({"x"}, {"y"}, zs);
  const auto u_cols = ci.ResolveColumns(table.schema()).value();
  const auto p = table.Empirical(u_cols);
  const auto spec = ci.SpecInProjectedDomain();
  ot::EuclideanCost cost(u_cols.size());

  Point out;
  out.domain = p.domain().TotalSize();
  {
    core::FastOtCleanOptions opts = bench::BenchRepairOptions().fast;
    opts.restrict_columns_to_active = false;
    Rng rng(132);
    WallTimer timer;
    const auto r = core::FastOtClean(p, spec, cost, opts, rng);
    if (r.ok()) {
      out.fast_sec = timer.ElapsedSeconds();
      out.fast_mb = 3.0 * r->plan.row_cells().size() *
                    r->plan.col_cells().size() * sizeof(double) / 1e6;
    }
  }
  if (run_qclp) {
    core::QclpOptions opts;
    opts.max_outer_iterations = 6;
    WallTimer timer;
    const auto r = core::QclpClean(p, spec, cost, opts);
    if (r.ok()) {
      out.qclp_sec = timer.ElapsedSeconds();
      out.qclp_mb = static_cast<double>(r->peak_tableau_bytes) / 1e6;
    }
  }
  return out;
}

}  // namespace

int OTCLEAN_BENCH_MAIN(fig13_14_qclp_scaling) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figures 13/14: FastOTClean vs QCLP, runtime & memory vs domain size",
      "QCLP wins only on tiny domains, then fails to scale; its memory "
      "always dominates");

  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "domain", "fast_t(s)",
              "qclp_t(s)", "fast_MB", "qclp_MB");
  struct Config {
    size_t num_z, z_card;
    bool qclp;
  };
  std::vector<Config> configs = {{1, 2, true},  {1, 3, true}, {1, 4, true},
                                 {2, 3, true},  {1, 8, true}, {2, 4, true},
                                 {3, 3, false}, {2, 6, false}};
  if (full) {
    configs.push_back({2, 5, true});
    configs.push_back({4, 3, false});
  }
  for (const auto& config : configs) {
    const auto point = RunOnce(config.num_z, config.z_card, config.qclp);
    auto fmt = [](double v) { return v < 0 ? -1.0 : v; };
    std::printf("%-10zu %-12.3f %-12.3f %-12.3f %-12.3f\n", point.domain,
                fmt(point.fast_sec), fmt(point.qclp_sec), point.fast_mb,
                point.qclp_mb);
  }
  std::printf("# qclp_t = -1 means not run / failed (domain too large, as "
              "in the paper's NA entries)\n");
  return 0;
}
