#ifndef OTCLEAN_BENCH_BENCH_CLEANING_H_
#define OTCLEAN_BENCH_BENCH_CLEANING_H_

// Shared harness for the data-cleaning experiments (Figs. 6–9, 12, 15–17):
// noise / missingness injection into the training half of a dataset,
// cleaning with the method under test, and evaluation on the clean half.

#include "bench_common.h"

namespace otclean::bench {

/// A dataset split into a (to-be-corrupted) training half and a clean test
/// half, plus the experiment wiring.
struct CleaningSetup {
  datagen::DatasetBundle bundle;
  dataset::Table train_clean;
  dataset::Table test;
  size_t label = 0;
  size_t noisy_col = 0;  ///< the column noise / missingness targets.
  std::vector<size_t> features;
};

inline CleaningSetup MakeCleaningSetup(datagen::DatasetBundle bundle,
                                       const std::string& noisy_col_name) {
  CleaningSetup setup;
  setup.bundle = std::move(bundle);
  const auto& table = setup.bundle.table;
  std::vector<size_t> train_rows, test_rows;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    (r % 2 == 0 ? train_rows : test_rows).push_back(r);
  }
  setup.train_clean = table.SelectRows(train_rows);
  setup.test = table.SelectRows(test_rows);
  setup.label =
      table.schema().ColumnIndex(setup.bundle.label_col).value();
  setup.noisy_col = table.schema().ColumnIndex(noisy_col_name).value();
  setup.features = ml::AllFeaturesExcept(table.schema(), setup.label);
  return setup;
}

/// Injects class-driven attribute noise at `rate` into the training half.
inline dataset::Table MakeDirtyTrain(const CleaningSetup& setup, double rate,
                                     uint64_t seed) {
  cleaning::AttributeNoiseOptions noise;
  noise.target_col = setup.noisy_col;
  noise.driver_col = setup.label;
  noise.rate = rate;
  noise.seed = seed;
  return cleaning::InjectAttributeNoise(setup.train_clean, noise).value();
}

/// OTClean repair of a training table, optionally with background knowledge
/// of which attribute is noisy (cheap to move the noisy attribute,
/// expensive to move anything else — the paper's OTClean-BG).
inline Result<dataset::Table> OtCleanRepairTrain(const CleaningSetup& setup,
                                                 const dataset::Table& dirty,
                                                 bool background_knowledge) {
  core::RepairOptions opts = BenchRepairOptions();
  std::unique_ptr<ot::CostFunction> cost;
  if (background_knowledge) {
    const auto u_cols =
        setup.bundle.constraint.ResolveColumns(dirty.schema()).value();
    std::vector<double> weights(u_cols.size(), 5.0);
    for (size_t i = 0; i < u_cols.size(); ++i) {
      if (u_cols[i] == setup.noisy_col) weights[i] = 0.2;
    }
    cost = std::make_unique<ot::WeightedEuclideanCost>(std::move(weights));
  }
  OTCLEAN_ASSIGN_OR_RETURN(
      core::RepairReport report,
      core::RepairTable(dirty, setup.bundle.constraint, opts, cost.get()));
  return std::move(report).repaired;
}

/// Baran-style corrector fitted on a small clean validation slice (10% of
/// the training half; Baran itself learns from user-verified corrections).
inline Result<dataset::Table> BaranRepairTrain(const CleaningSetup& setup,
                                               const dataset::Table& dirty) {
  std::vector<size_t> sample_rows;
  for (size_t r = 0; r < setup.train_clean.num_rows(); r += 10) {
    sample_rows.push_back(r);
  }
  cleaning::BaranStyleCleaner cleaner;
  OTCLEAN_RETURN_NOT_OK(
      cleaner.Fit(setup.train_clean.SelectRows(sample_rows)));
  return cleaner.Clean(dirty);
}

/// AUC / F1 of a logistic-regression model trained on `train`, evaluated on
/// the clean test half.
inline ml::HoldoutResult Evaluate(const CleaningSetup& setup,
                                  const dataset::Table& train) {
  return EvalOnCleanTest(train, setup.test, setup.label, setup.features)
      .value_or(ml::HoldoutResult{});
}

/// Missingness + imputation: blanks the noisy column at `rate` under the
/// given mechanism, imputes, and (optionally) post-processes with OTClean.
inline Result<dataset::Table> ImputedTrain(const CleaningSetup& setup,
                                           cleaning::MissingMechanism mech,
                                           double rate, uint64_t seed,
                                           cleaning::Imputer& imputer,
                                           bool with_otclean) {
  cleaning::MissingnessOptions miss;
  miss.target_col = setup.noisy_col;
  miss.driver_col = setup.label;
  miss.mechanism = mech;
  miss.rate = rate;
  miss.seed = seed;
  OTCLEAN_ASSIGN_OR_RETURN(dataset::Table dirty,
                           cleaning::InjectMissingness(setup.train_clean, miss));
  OTCLEAN_ASSIGN_OR_RETURN(dataset::Table imputed, imputer.Impute(dirty));
  if (!with_otclean) return imputed;
  return OtCleanRepairTrain(setup, imputed, /*background_knowledge=*/false);
}

}  // namespace otclean::bench

#endif  // OTCLEAN_BENCH_BENCH_CLEANING_H_
