#ifndef OTCLEAN_BENCH_BENCH_FAIRNESS_H_
#define OTCLEAN_BENCH_BENCH_FAIRNESS_H_

// Shared harness for the fairness experiments (Fig. 4, Fig. 5, Table 3).
//
// Protocol (Section 6.2): k-fold cross validation with a per-fold repair of
// the *training* partition. OTClean's probabilistic cleaner is a tuple-level
// mapping (the paper highlights its streaming/deployment use), so for the
// OTClean methods the fitted cleaner is also applied to evaluation tuples
// before scoring — the deployment-pipeline view. The Capuchin methods are
// database repairs and only transform the training data.

#include <cmath>

#include "bench_common.h"

namespace otclean::bench {

struct FairnessRow {
  std::string method;
  double auc = 0.0;
  double abs_log_rod = 0.0;
  double eo_gap = 0.0;
  double dp_gap = 0.0;
  double repair_seconds = 0.0;
  bool ok = false;
};

struct FairnessBenchConfig {
  size_t cv_folds = 3;
  bool include_qclp = false;  ///< only feasible on small constraint domains.
  uint64_t seed = 7;
};

namespace internal {

/// One fold's preparation: transformed training table plus an optional
/// tuple-level cleaner to apply to evaluation rows.
struct PreparedFold {
  dataset::Table train;
  std::shared_ptr<core::OtCleanRepairer> row_cleaner;
};

using FoldPrep =
    std::function<Result<PreparedFold>(const dataset::Table& train)>;

struct EvalOutput {
  double auc = 0.0;
  std::vector<double> oof_scores;
};

/// Custom CV loop: fit on prepared train, score evaluation rows (optionally
/// routed through the fold's tuple cleaner).
inline Result<EvalOutput> CrossValidateWithCleaner(
    const dataset::Table& table, size_t label,
    const std::vector<size_t>& features, const FoldPrep& prep, size_t folds,
    uint64_t seed) {
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<int> labels,
                           ml::BinaryLabels(table, label));
  Rng rng(seed);
  const std::vector<size_t> fold_of = ml::StratifiedFolds(labels, folds, rng);

  EvalOutput out;
  out.oof_scores.assign(table.num_rows(), 0.5);
  std::vector<double> fold_auc;
  for (size_t fold = 0; fold < folds; ++fold) {
    std::vector<size_t> train_rows, test_rows;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      (fold_of[r] == fold ? test_rows : train_rows).push_back(r);
    }
    if (train_rows.empty() || test_rows.empty()) continue;

    PreparedFold prepared{table.SelectRows(train_rows), nullptr};
    if (prep) {
      OTCLEAN_ASSIGN_OR_RETURN(prepared, prep(prepared.train));
    }
    ml::LogisticRegression model;
    OTCLEAN_RETURN_NOT_OK(prepared.train.num_rows() > 0
                              ? model.Fit(prepared.train, label, features)
                              : Status::Internal("empty train fold"));

    Rng clean_rng(seed ^ (fold + 1));
    std::vector<int> test_labels;
    std::vector<double> test_scores;
    for (size_t r : test_rows) {
      std::vector<int> row = table.Row(r);
      if (prepared.row_cleaner != nullptr) {
        row = prepared.row_cleaner->RepairRow(row, clean_rng);
      }
      const double score = model.PredictProb(row);
      out.oof_scores[r] = score;
      test_labels.push_back(labels[r]);
      test_scores.push_back(score);
    }
    fold_auc.push_back(ml::Auc(test_labels, test_scores));
  }
  if (fold_auc.empty()) return Status::Internal("no folds evaluated");
  for (double a : fold_auc) out.auc += a;
  out.auc /= static_cast<double>(fold_auc.size());
  return out;
}

}  // namespace internal

inline std::vector<FairnessRow> RunFairnessBench(
    const datagen::DatasetBundle& bundle, const FairnessBenchConfig& config) {
  const auto& table = bundle.table;
  const auto& schema = table.schema();
  const size_t label = schema.ColumnIndex(bundle.label_col).value();
  const size_t sensitive = schema.ColumnIndex(bundle.sensitive_col).value();

  std::vector<size_t> admissible;
  for (const auto& name : bundle.admissible_cols) {
    admissible.push_back(schema.ColumnIndex(name).value());
  }
  std::vector<size_t> inadmissible;
  for (const auto& name : bundle.inadmissible_cols) {
    inadmissible.push_back(schema.ColumnIndex(name).value());
  }
  std::vector<size_t> features = admissible;
  features.insert(features.end(), inadmissible.begin(), inadmissible.end());

  // The fairness cost (Section 6.2): sensitive and admissible attributes are
  // frozen; only inadmissible attributes may move. Cleaned sub-domain layout:
  // X = sensitive, Y = inadmissible, Z = admissible.
  const size_t u_arity = 1 + inadmissible.size() + admissible.size();
  std::vector<size_t> frozen = {0};
  for (size_t i = 0; i < admissible.size(); ++i) {
    frozen.push_back(1 + inadmissible.size() + i);
  }

  auto otclean_prep = [&bundle, label, u_arity, frozen](bool learned_cost) {
    return [&bundle, label, u_arity, frozen, learned_cost](
               const dataset::Table& train)
               -> Result<internal::PreparedFold> {
      core::RepairOptions opts = BenchRepairOptions();
      std::unique_ptr<ot::CostFunction> cost;
      if (learned_cost) {
        OTCLEAN_ASSIGN_OR_RETURN(
            std::vector<size_t> u_cols,
            bundle.constraint.ResolveColumns(train.schema()));
        metric::MlkrOptions mopts;
        mopts.max_rows = 150;
        mopts.epochs = 15;
        auto mlkr = metric::LearnMlkrWeights(train, label, u_cols, mopts);
        if (mlkr.ok()) {
          auto base = std::make_shared<ot::WeightedEuclideanCost>(
              std::move(mlkr->weights));
          auto fr = std::make_shared<std::vector<bool>>(u_arity, false);
          for (size_t f : frozen) (*fr)[f] = true;
          cost = std::make_unique<ot::LambdaCost>(
              [base, fr](const std::vector<int>& a,
                         const std::vector<int>& b) {
                for (size_t i = 0; i < a.size(); ++i) {
                  if ((*fr)[i] && a[i] != b[i]) return 1e6;
                }
                return base->Cost(a, b);
              });
        }
      }
      if (cost == nullptr) {
        cost = std::make_unique<ot::FairnessCost>(frozen, u_arity);
      }
      auto repairer =
          std::make_shared<core::OtCleanRepairer>(bundle.constraint, opts);
      OTCLEAN_RETURN_NOT_OK(repairer->Fit(train, cost.get()));
      Rng rng(4242);
      OTCLEAN_ASSIGN_OR_RETURN(dataset::Table repaired,
                               repairer->Apply(train, rng));
      return internal::PreparedFold{std::move(repaired), repairer};
    };
  };

  auto qclp_prep =
      [&bundle, u_arity,
       frozen](const dataset::Table& train) -> Result<internal::PreparedFold> {
    core::RepairOptions opts;
    opts.solver = core::Solver::kQclp;
    opts.qclp.max_outer_iterations = 8;
    opts.qclp.restrict_columns_to_active = true;
    ot::FairnessCost cost(frozen, u_arity);
    auto repairer =
        std::make_shared<core::OtCleanRepairer>(bundle.constraint, opts);
    OTCLEAN_RETURN_NOT_OK(repairer->Fit(train, &cost));
    Rng rng(4243);
    OTCLEAN_ASSIGN_OR_RETURN(dataset::Table repaired,
                             repairer->Apply(train, rng));
    return internal::PreparedFold{std::move(repaired), repairer};
  };

  auto capuchin_prep = [&bundle](fairness::CapuchinMethod method) {
    return [&bundle, method](const dataset::Table& train)
               -> Result<internal::PreparedFold> {
      fairness::CapuchinOptions opts;
      opts.method = method;
      OTCLEAN_ASSIGN_OR_RETURN(
          dataset::Table repaired,
          fairness::CapuchinRepair(train, bundle.constraint, opts));
      return internal::PreparedFold{std::move(repaired), nullptr};
    };
  };

  auto maxsat_prep =
      [&bundle](const dataset::Table& train) -> Result<internal::PreparedFold> {
    fairness::CapMaxSatOptions opts;
    opts.maxsat.max_flips = 60000;
    opts.maxsat.restarts = 1;
    OTCLEAN_ASSIGN_OR_RETURN(
        fairness::CapMaxSatReport report,
        fairness::CapMaxSatRepair(train, bundle.constraint, opts));
    return internal::PreparedFold{std::move(report.repaired), nullptr};
  };

  struct Method {
    std::string name;
    internal::FoldPrep prep;
    bool dropped = false;
  };
  std::vector<Method> methods;
  methods.push_back({"No repair", nullptr, false});
  methods.push_back({"FastOTClean-C1", otclean_prep(false), false});
  methods.push_back({"FastOTClean-C2", otclean_prep(true), false});
  if (config.include_qclp) methods.push_back({"QCLP", qclp_prep, false});
  methods.push_back(
      {"Cap(MF)",
       capuchin_prep(fairness::CapuchinMethod::kMatrixFactorization), false});
  methods.push_back(
      {"Cap(IC)",
       capuchin_prep(fairness::CapuchinMethod::kIndependentCoupling), false});
  methods.push_back({"Cap(MS)", maxsat_prep, false});
  methods.push_back({"Dropped", nullptr, true});

  std::vector<FairnessRow> rows;
  for (const auto& method : methods) {
    FairnessRow row;
    row.method = method.name;
    const auto& used_features = method.dropped ? admissible : features;

    WallTimer timer;
    const auto result = internal::CrossValidateWithCleaner(
        table, label, used_features, method.prep, config.cv_folds,
        config.seed);
    row.repair_seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      rows.push_back(row);
      continue;
    }
    row.auc = result->auc;

    fairness::FairnessInputs in;
    in.table = &table;
    in.scores = result->oof_scores;
    in.sensitive_col = sensitive;
    in.admissible_cols = admissible;
    row.abs_log_rod = std::fabs(fairness::LogRod(in).value_or(0.0));
    row.eo_gap = fairness::EqualityOfOddsGap(in, label).value_or(0.0);
    row.dp_gap = fairness::DemographicParityGap(in).value_or(0.0);
    row.ok = true;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace otclean::bench

#endif  // OTCLEAN_BENCH_BENCH_FAIRNESS_H_
