// Figure 11: the Section-5 optimizations. (a) Saturation trick for
// unsaturated constraints: the naive method (clean the full joint over all
// attributes) blows up as extra W attributes are added, while the
// saturation method's cost stays flat. (b) Warm-starting the Sinkhorn
// scaling vectors cuts the total inner-iteration count several-fold.

#include "bench_common.h"

using namespace otclean;

int OTCLEAN_BENCH_MAIN(fig11_optimizations) {
  const bool full = bench::FullScale(argc, argv);

  bench::PrintHeader(
      "Figure 11a: unsaturated constraints, naive vs saturation",
      "naive time grows with the W-domain; saturation is flat");

  std::printf("%-12s %-12s %-14s %-16s\n", "#w_attrs", "full_domain",
              "naive_time(s)", "saturation_time(s)");
  const size_t max_w = full ? 4 : 3;
  for (size_t num_w = 0; num_w <= max_w; ++num_w) {
    datagen::ScalingDatasetOptions gen;
    gen.num_rows = 2500;
    gen.num_z_attrs = 1;
    gen.z_card = 3;
    gen.num_w_attrs = num_w;
    gen.w_card = 3;
    gen.violation = 0.5;
    gen.seed = 111;
    const auto table = datagen::MakeScalingDataset(gen).value();
    const core::CiConstraint ci({"x"}, {"y"}, {"z0"});
    const size_t full_domain = table.schema().ToDomain().TotalSize();

    double naive_time = -1.0, sat_time = -1.0;
    {
      core::RepairOptions opts = bench::BenchRepairOptions();
      opts.use_saturation = false;
      WallTimer timer;
      if (core::RepairTable(table, ci, opts).ok()) {
        naive_time = timer.ElapsedSeconds();
      }
    }
    {
      core::RepairOptions opts = bench::BenchRepairOptions();
      opts.use_saturation = true;
      WallTimer timer;
      if (core::RepairTable(table, ci, opts).ok()) {
        sat_time = timer.ElapsedSeconds();
      }
    }
    std::printf("%-12zu %-12zu %-14.3f %-16.3f\n", num_w, full_domain,
                naive_time, sat_time);
  }

  bench::PrintHeader("Figure 11b: Sinkhorn warm start",
                     "warm start reduces total Sinkhorn iterations ~7x");

  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 4000;
  gen.num_z_attrs = 2;
  gen.z_card = 3;
  gen.violation = 0.5;
  gen.seed = 112;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0", "z1"});
  const auto u_cols = ci.ResolveColumns(table.schema()).value();
  const auto p = table.Empirical(u_cols);
  const auto spec = ci.SpecInProjectedDomain();
  ot::EuclideanCost cost(u_cols.size());

  size_t iters_with = 0, iters_without = 0;
  for (const bool warm : {true, false}) {
    core::FastOtCleanOptions opts = bench::BenchRepairOptions().fast;
    opts.warm_start = warm;
    opts.max_outer_iterations = 60;
    opts.outer_tolerance = 1e-6;
    opts.max_sinkhorn_iterations = 100000;
    opts.sinkhorn_tolerance = 1e-9;
    Rng rng(113);
    const auto r = core::FastOtClean(p, spec, cost, opts, rng).value();
    std::printf("%-14s total_sinkhorn_iterations=%-8zu outer=%zu cost=%.5f\n",
                warm ? "with warm" : "without warm",
                r.total_sinkhorn_iterations, r.outer_iterations,
                r.transport_cost);
    (warm ? iters_with : iters_without) = r.total_sinkhorn_iterations;
  }
  std::printf("# reproduced: warm start speedup = %.1fx\n",
              iters_with > 0
                  ? static_cast<double>(iters_without) / iters_with
                  : 0.0);
  return 0;
}
