// Scalar-vs-SIMD bench for the TransportKernel primitives: dense Apply /
// ApplyTranspose, sparse (CSR gather) Apply, ScaleToPlan, and the
// TransportCost reduction, at 256²–4096², single thread.
//
// Timing compares the scalar reference tier against the widest tier the
// CPU supports, through the real kernel objects. Cross-checking covers
// EVERY supported vector tier (not just the widest): each op's output is
// validated against scalar under avx2, avx512, and/or neon as available,
// so a CI runner without AVX-512 still exercises and validates whatever
// tiers it has — and the output says which. A mismatch fails the run.
// Results are printed as a table and written to BENCH_simd_kernel.json so
// the repo's perf trajectory has machine-readable data points.
//
// Flags:
//   --full     add the 4096² grid point (slower)
//   --smoke    256² only, one reliable reason: CI smoke mode
//   (any --benchmark_min_time=... flag is treated as --smoke, so gbench-
//   style CI invocations work unchanged)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "linalg/simd.h"
#include "linalg/transport_kernel.h"
#include "linalg/transport_kernel_f32.h"

using namespace otclean;

namespace {

linalg::Matrix RandomCost(size_t m, size_t n, Rng& rng) {
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * 3.0;
  return cost;
}

linalg::Vector RandomMarginal(size_t n, Rng& rng) {
  linalg::Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
  v.Normalize();
  return v;
}

struct OpResult {
  std::string op;
  size_t n = 0;
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  double speedup() const { return simd_ms > 0.0 ? scalar_ms / simd_ms : 0.0; }
};

/// Times `fn` (already bound to its inputs) as best-of-`reps` wall time.
template <typename Fn>
double BestOfMs(Fn&& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds() * 1e3);
  }
  return best;
}

bool UlpAgree(const linalg::Vector& a, const linalg::Vector& b, size_t n) {
  for (size_t i = 0; i < a.size(); ++i) {
    const double tol =
        4e-16 * static_cast<double>(n) * (std::fabs(b[i]) + 1.0);
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

/// Vector tiers the CPU supports — each is cross-checked against scalar.
std::vector<linalg::simd::Isa> VectorIsas() {
  std::vector<linalg::simd::Isa> out;
  for (linalg::simd::Isa isa : linalg::simd::SupportedIsas()) {
    if (isa != linalg::simd::Isa::kScalar) out.push_back(isa);
  }
  return out;
}

void WriteJson(const std::string& path, const std::vector<OpResult>& results,
               bool checks_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"simd_kernel\",\n");
  std::fprintf(f, "  \"isa\": \"%s\",\n", linalg::simd::ActiveIsaName());
  std::fprintf(f, "  \"cross_checked_isas\": [");
  const auto tiers = VectorIsas();
  for (size_t i = 0; i < tiers.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i > 0 ? ", " : "",
                 linalg::simd::IsaName(tiers[i]));
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"single_thread\": true,\n");
  std::fprintf(f, "  \"cross_checks_ok\": %s,\n", checks_ok ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const OpResult& r = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"n\": %zu, \"scalar_ms\": %.4f, "
                 "\"simd_ms\": %.4f, \"speedup\": %.2f}%s\n",
                 r.op.c_str(), r.n, r.scalar_ms, r.simd_ms, r.speedup(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strncmp(argv[i], "--benchmark_min_time", 20) == 0) {
      smoke = true;
    }
  }
  const bool full = bench::FullScale(argc, argv);

  const linalg::simd::Isa best = linalg::simd::ActiveIsa();
  if (best == linalg::simd::Isa::kScalar) {
    std::printf("# no vector ISA available; comparing scalar vs scalar\n");
  }
  bench::PrintHeader(
      "SIMD kernel primitives: scalar vs runtime-dispatched vector tier",
      "single-thread speedup of the Sinkhorn hot loop; ULP cross-checked");
  std::printf("# vector tier: %s\n", linalg::simd::IsaName(best));

  std::vector<size_t> sizes;
  if (smoke) {
    sizes = {256};
  } else {
    sizes = {256, 512, 1024, 2048};
    if (full) sizes.push_back(4096);
  }

  std::vector<OpResult> results;
  bool checks_ok = true;
  Rng rng(17);

  std::printf("%-16s %-7s %-11s %-11s %-8s\n", "op", "n", "scalar_ms",
              "simd_ms", "speedup");
  for (const size_t n : sizes) {
    const int reps = smoke ? 3 : (n >= 2048 ? 5 : 9);
    const linalg::Matrix cost = RandomCost(n, n, rng);
    const linalg::Vector u = RandomMarginal(n, rng);
    const linalg::Vector v = RandomMarginal(n, rng);
    const linalg::DenseTransportKernel dense(cost.GibbsKernel(0.5),
                                             /*num_threads=*/1);
    // Truncated kernel for the CSR gather path: the 0.032 cutoff at
    // ε=0.5 over U[0,3) costs keeps C ≤ 1.72, i.e. ~57% of entries.
    const linalg::SparseTransportKernel sparse =
        linalg::SparseTransportKernel::FromCost(cost, 0.5, 0.032,
                                                /*num_threads=*/1);
    // f32 storage tier twins: float-held kernel values, double
    // accumulation. Same kept-set as the f64 sparse kernel by contract.
    const linalg::DenseTransportKernelF32 dense_f32 =
        linalg::DenseTransportKernelF32::FromCost(cost, 0.5,
                                                  /*num_threads=*/1);
    const linalg::SparseTransportKernelF32 sparse_f32 =
        linalg::SparseTransportKernelF32::FromCost(cost, 0.5, 0.032,
                                                   /*num_threads=*/1);

    struct Op {
      const char* name;
      std::function<void(linalg::Vector&)> run;
    };
    const std::vector<Op> ops = {
        {"dense_apply", [&](linalg::Vector& y) { dense.Apply(v, y); }},
        {"dense_applyT",
         [&](linalg::Vector& y) { dense.ApplyTranspose(u, y); }},
        {"sparse_apply", [&](linalg::Vector& y) { sparse.Apply(v, y); }},
        {"sparse_applyT",
         [&](linalg::Vector& y) { sparse.ApplyTranspose(u, y); }},
        {"dense_cost",
         [&](linalg::Vector& y) {
           y = linalg::Vector(1, dense.TransportCost(cost, u, v));
         }},
        {"sparse_cost",
         [&](linalg::Vector& y) {
           y = linalg::Vector(1, sparse.TransportCost(cost, u, v));
         }},
        {"dense_apply_f32",
         [&](linalg::Vector& y) { dense_f32.Apply(v, y); }},
        {"dense_applyT_f32",
         [&](linalg::Vector& y) { dense_f32.ApplyTranspose(u, y); }},
        {"sparse_apply_f32",
         [&](linalg::Vector& y) { sparse_f32.Apply(v, y); }},
        {"sparse_applyT_f32",
         [&](linalg::Vector& y) { sparse_f32.ApplyTranspose(u, y); }},
        {"dense_cost_f32",
         [&](linalg::Vector& y) {
           y = linalg::Vector(1, dense_f32.TransportCost(cost, u, v));
         }},
        {"sparse_cost_f32",
         [&](linalg::Vector& y) {
           y = linalg::Vector(1, sparse_f32.TransportCost(cost, u, v));
         }},
    };

    double scalar_iter_ms = 0.0, simd_iter_ms = 0.0;
    for (const Op& op : ops) {
      OpResult r;
      r.op = op.name;
      r.n = n;
      linalg::Vector scalar_out, simd_out;
      linalg::simd::SetIsa(linalg::simd::Isa::kScalar);
      r.scalar_ms = BestOfMs([&] { op.run(scalar_out); }, reps);
      linalg::simd::SetIsa(best);
      r.simd_ms = BestOfMs([&] { op.run(simd_out); }, reps);
      if (!UlpAgree(simd_out, scalar_out, n)) {
        std::printf("!! %s at %zu: scalar/simd mismatch\n", op.name, n);
        checks_ok = false;
      }
      // Validate every other supported vector tier against scalar, so a
      // machine without the widest tier still exercises the ones it has.
      for (linalg::simd::Isa isa : VectorIsas()) {
        if (isa == best) continue;
        linalg::simd::SetIsa(isa);
        linalg::Vector tier_out;
        op.run(tier_out);
        if (!UlpAgree(tier_out, scalar_out, n)) {
          std::printf("!! %s at %zu: scalar/%s mismatch\n", op.name, n,
                      linalg::simd::IsaName(isa));
          checks_ok = false;
        }
        linalg::simd::SetIsa(best);
      }
      if (r.op == "dense_apply" || r.op == "dense_applyT") {
        scalar_iter_ms += r.scalar_ms;
        simd_iter_ms += r.simd_ms;
      }
      std::printf("%-16s %-7zu %-11.3f %-11.3f %-8.2f\n", r.op.c_str(), r.n,
                  r.scalar_ms, r.simd_ms, r.speedup());
      results.push_back(r);
    }
    // The per-Sinkhorn-iteration pair: one Apply + one ApplyTranspose.
    OpResult pair;
    pair.op = "dense_apply+applyT";
    pair.n = n;
    pair.scalar_ms = scalar_iter_ms;
    pair.simd_ms = simd_iter_ms;
    std::printf("%-16s %-7zu %-11.3f %-11.3f %-8.2f\n", pair.op.c_str(), n,
                pair.scalar_ms, pair.simd_ms, pair.speedup());
    results.push_back(pair);
  }

  linalg::simd::SetIsa(best);
  WriteJson("BENCH_simd_kernel.json", results, checks_ok);
  std::printf("# tiers cross-checked vs scalar:");
  for (linalg::simd::Isa isa : VectorIsas()) {
    std::printf(" %s", linalg::simd::IsaName(isa));
  }
  std::printf("\n# cross-checks passed = %s\n", checks_ok ? "yes" : "NO");
  return checks_ok ? 0 : 1;
}
