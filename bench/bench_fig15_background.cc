// Figure 15: blind repair versus repair with background knowledge of the
// erroneous attribute, on Boston attribute noise.
//
// Reproduction target: OTClean-BG tracks the Clean baseline more closely
// than OTClean-Blind across the noise sweep.

#include "bench_cleaning.h"

using namespace otclean;

int OTCLEAN_BENCH_MAIN(fig15_background) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 15: blind repair vs background knowledge (Boston)",
      "OTClean-BG >= OTClean-Blind, both >> Dirty at high noise");

  auto setup = bench::MakeCleaningSetup(
      datagen::MakeBoston(full ? 2000 : 1400, 151).value(), "B");
  const auto clean_result = bench::Evaluate(setup, setup.train_clean);
  std::printf("Clean baseline: AUC=%.3f\n", clean_result.auc);

  const std::vector<double> rates =
      full ? std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
           : std::vector<double>{0.2, 0.4, 0.6};

  std::printf("%-8s %-8s %-10s %-8s\n", "rate(%)", "Dirty", "Blind", "BG");
  double sum_blind = 0.0, sum_bg = 0.0;
  for (const double rate : rates) {
    const auto dirty = bench::MakeDirtyTrain(setup, rate, 152);
    const double a_dirty = bench::Evaluate(setup, dirty).auc;
    const double a_blind =
        bench::Evaluate(setup,
                        bench::OtCleanRepairTrain(setup, dirty, false).value())
            .auc;
    const double a_bg =
        bench::Evaluate(setup,
                        bench::OtCleanRepairTrain(setup, dirty, true).value())
            .auc;
    sum_blind += a_blind;
    sum_bg += a_bg;
    std::printf("%-8.0f %-8.3f %-10.3f %-8.3f\n", rate * 100, a_dirty,
                a_blind, a_bg);
  }
  std::printf("# reproduced: mean BG AUC >= mean Blind AUC = %s\n",
              sum_bg >= sum_blind - 0.01 ? "yes" : "NO");
  return 0;
}
