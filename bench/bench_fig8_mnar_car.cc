// Figure 8: Missing Not At Random on Car — same grid as Fig. 7 but with
// the harder MNAR mechanism on the Car dataset.
//
// Reproduction target: OTClean improves over each plain imputer, but the
// curves decline at high missing rates (MNAR cannot be fully undone).

#include "bench_cleaning.h"

using namespace otclean;

int OTCLEAN_BENCH_MAIN(fig8_mnar_car) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 8: MNAR on Car (AUC vs missing rate)",
      "OTClean-<imputer> beats Dirty-<imputer>; both decline at high rates");

  auto setup = bench::MakeCleaningSetup(
      datagen::MakeCar(full ? 1728 : 1400, 81).value(), "doors");
  const auto clean_result = bench::Evaluate(setup, setup.train_clean);
  std::printf("Clean baseline: AUC=%.3f\n", clean_result.auc);

  const std::vector<double> rates =
      full ? std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
           : std::vector<double>{0.2, 0.4, 0.6};

  cleaning::KnnImputer knn;
  cleaning::MostFrequentImputer mf;
  cleaning::GainStyleImputer gain;
  cleaning::HyperImputeStyleImputer hyper;
  struct Entry {
    const char* name;
    cleaning::Imputer* imputer;
  };
  const std::vector<Entry> imputers = {
      {"kNN", &knn}, {"MF", &mf}, {"GAIN", &gain}, {"HyperImpute", &hyper}};

  for (const auto& entry : imputers) {
    std::printf("\n%-12s %-10s %-12s\n", entry.name, "Dirty-AUC",
                "OTClean-AUC");
    for (const double rate : rates) {
      const auto dirty = bench::ImputedTrain(
          setup, cleaning::MissingMechanism::kMnar, rate, 810, *entry.imputer,
          false);
      const auto fixed = bench::ImputedTrain(
          setup, cleaning::MissingMechanism::kMnar, rate, 810, *entry.imputer,
          true);
      std::printf("rate=%-6.0f %-10.3f %-12.3f\n", rate * 100,
                  bench::Evaluate(setup, dirty.value()).auc,
                  bench::Evaluate(setup, fixed.value()).auc);
    }
  }
  return 0;
}
