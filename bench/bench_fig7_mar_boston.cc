// Figure 7: Missing At Random on Boston — AUC vs missing rate for each
// imputer (kNN, MF, GAIN-style, HyperImpute-style), with and without
// OTClean post-processing.
//
// Reproduction target: plain imputers degrade as the missing rate grows;
// adding OTClean keeps the curves near the Clean baseline.

#include "bench_cleaning.h"

using namespace otclean;

int OTCLEAN_BENCH_MAIN(fig7_mar_boston) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 7: MAR on Boston (AUC vs missing rate)",
      "Dirty-<imputer> drops with rate; OTClean-<imputer> stays near Clean");

  auto setup = bench::MakeCleaningSetup(
      datagen::MakeBoston(full ? 2000 : 1400, 71).value(), "B");
  const auto clean_result = bench::Evaluate(setup, setup.train_clean);
  std::printf("Clean baseline: AUC=%.3f\n", clean_result.auc);

  const std::vector<double> rates =
      full ? std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
           : std::vector<double>{0.2, 0.4, 0.6};

  cleaning::KnnImputer knn;
  cleaning::MostFrequentImputer mf;
  cleaning::GainStyleImputer gain;
  cleaning::HyperImputeStyleImputer hyper;
  struct Entry {
    const char* name;
    cleaning::Imputer* imputer;
  };
  const std::vector<Entry> imputers = {
      {"kNN", &knn}, {"MF", &mf}, {"GAIN", &gain}, {"HyperImpute", &hyper}};

  for (const auto& entry : imputers) {
    std::printf("\n%-12s %-10s %-12s\n", entry.name, "Dirty-AUC",
                "OTClean-AUC");
    for (const double rate : rates) {
      const auto dirty = bench::ImputedTrain(
          setup, cleaning::MissingMechanism::kMar, rate, 710, *entry.imputer,
          false);
      const auto fixed = bench::ImputedTrain(
          setup, cleaning::MissingMechanism::kMar, rate, 710, *entry.imputer,
          true);
      std::printf("rate=%-6.0f %-10.3f %-12.3f\n", rate * 100,
                  bench::Evaluate(setup, dirty.value()).auc,
                  bench::Evaluate(setup, fixed.value()).auc);
    }
  }
  return 0;
}
