// Ablation: sparse transport-plan representation (Section 6.5's suggested
// optimization) — kernel-truncation sweep on a mid-sized constraint domain.
//
// Expected shape: nonzeros (and hence plan memory) drop sharply with the
// cutoff while transport cost and repair quality stay put, until an
// over-aggressive cutoff starts dropping needed mass routes.

#include "bench_common.h"

using namespace otclean;

int main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Ablation: sparse kernel truncation",
      "nnz and memory drop orders of magnitude at unchanged repair quality");

  datagen::ScalingDatasetOptions gen;
  gen.num_rows = full ? 8000 : 3000;
  gen.num_z_attrs = full ? 4 : 3;
  gen.z_card = 3;
  gen.violation = 0.5;
  gen.seed = 191;
  const auto table = datagen::MakeScalingDataset(gen).value();
  std::vector<std::string> zs;
  for (size_t i = 0; i < gen.num_z_attrs; ++i) {
    zs.push_back("z" + std::to_string(i));
  }
  const core::CiConstraint ci({"x"}, {"y"}, zs);
  const auto u_cols = ci.ResolveColumns(table.schema()).value();
  const auto p = table.Empirical(u_cols);
  const auto spec = ci.SpecInProjectedDomain();
  ot::EuclideanCost cost(u_cols.size());

  std::printf("%-12s %-12s %-10s %-12s %-10s\n", "truncation", "kernel_nnz",
              "cost", "plan_CMI", "time(s)");
  std::printf("# plan_CMI: residual CMI of the plan's actual target "
              "marginal — a cutoff that zeroes the cost has stopped "
              "moving mass (over-truncation)\n");
  for (const double cutoff : {0.0, 1e-12, 1e-8, 1e-4, 1e-2}) {
    core::FastOtCleanOptions opts;
    opts.epsilon = 0.1;
    opts.max_outer_iterations = 40;
    opts.outer_tolerance = 1e-6;
    opts.max_sinkhorn_iterations = 1000;
    opts.kernel_truncation = cutoff;
    Rng rng(192);
    WallTimer timer;
    const auto r = core::FastOtClean(p, spec, cost, opts, rng);
    if (!r.ok()) {
      std::printf("%-12.0e failed: %s\n", cutoff,
                  r.status().ToString().c_str());
      continue;
    }
    // CMI of the plan's actual target marginal (not the projected Q).
    const auto colm = r->plan.TargetMarginal();
    prob::JointDistribution t(p.domain());
    for (size_t j = 0; j < r->plan.col_cells().size(); ++j) {
      t[r->plan.col_cells()[j]] = colm[j];
    }
    t.Normalize();
    std::printf("%-12.0e %-12zu %-10.4f %-12.2e %-10.2f\n", cutoff,
                r->kernel_nnz, r->transport_cost,
                prob::ConditionalMutualInformation(t, spec),
                timer.ElapsedSeconds());
  }
  return 0;
}
