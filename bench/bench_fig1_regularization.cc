// Figure 1: effect of the entropic-regularization coefficient on the
// transport plan between two 1-D Gaussian-mixture distributions.
//
// The paper plots the plan heatmaps for 1/ρ in {1e-4, 1e-3, 1e-2, 1e-1};
// larger coefficients spread the mass. We quantify "spread" by the plan's
// entropy and the mean per-row support size, which must both increase
// monotonically with the coefficient.

#include <algorithm>
#include <cmath>
#include <functional>

#include "bench_common.h"

using namespace otclean;

namespace {

/// Discretizes a two-component Gaussian mixture onto `bins` points in
/// [lo, hi].
linalg::Vector MixtureHistogram(double m1, double m2, double sd, double lo,
                                double hi, size_t bins) {
  linalg::Vector v(bins);
  for (size_t i = 0; i < bins; ++i) {
    const double x =
        lo + (hi - lo) * (static_cast<double>(i) + 0.5) / static_cast<double>(bins);
    const double g1 = std::exp(-0.5 * (x - m1) * (x - m1) / (sd * sd));
    const double g2 = std::exp(-0.5 * (x - m2) * (x - m2) / (sd * sd));
    v[i] = 0.5 * g1 + 0.5 * g2;
  }
  v.Normalize();
  return v;
}

/// Mean number of columns holding 95% of each row's mass.
double MeanRowSupport(const linalg::Matrix& plan) {
  double total = 0.0;
  for (size_t r = 0; r < plan.rows(); ++r) {
    std::vector<double> row(plan.cols());
    double mass = 0.0;
    for (size_t c = 0; c < plan.cols(); ++c) {
      row[c] = plan(r, c);
      mass += row[c];
    }
    if (mass <= 0.0) continue;
    std::sort(row.begin(), row.end(), std::greater<double>());
    double acc = 0.0;
    size_t k = 0;
    while (k < row.size() && acc < 0.95 * mass) acc += row[k++];
    total += static_cast<double>(k);
  }
  return total / static_cast<double>(plan.rows());
}

}  // namespace

int OTCLEAN_BENCH_MAIN(fig1_regularization) {
  const bool full = bench::FullScale(argc, argv);
  const size_t bins = full ? 128 : 64;

  bench::PrintHeader(
      "Figure 1: entropic regularization smooths the transport plan",
      "plan spread (entropy, row support) increases with the coefficient");

  // P: mixture on [-2, 3]; Q: mixture on [0, 6] (the paper's ranges). The
  // ground cost is normalized to [0, 1] so that the smallest coefficient
  // stays above the double-precision underflow threshold of the Gibbs
  // kernel (the paper's 1e-4 setting relies on log-domain arithmetic in a
  // continuous solver; the qualitative sweep is the reproduction target).
  const linalg::Vector p = MixtureHistogram(-1.0, 2.0, 0.6, -2.0, 3.0, bins);
  const linalg::Vector q = MixtureHistogram(1.0, 5.0, 0.7, 0.0, 6.0, bins);
  linalg::Matrix cost(bins, bins);
  double max_cost = 0.0;
  for (size_t i = 0; i < bins; ++i) {
    const double xi = -2.0 + 5.0 * (static_cast<double>(i) + 0.5) / bins;
    for (size_t j = 0; j < bins; ++j) {
      const double yj = 0.0 + 6.0 * (static_cast<double>(j) + 0.5) / bins;
      cost(i, j) = std::fabs(xi - yj);
      max_cost = std::max(max_cost, cost(i, j));
    }
  }
  cost *= 1.0 / max_cost;

  std::printf("%-12s %-14s %-18s %-10s\n", "coef", "plan_entropy",
              "mean_row_support", "iters");
  double prev_entropy = -1.0;
  bool monotone = true;
  for (const double coef : {5e-3, 1e-2, 5e-2, 1e-1}) {
    ot::SinkhornOptions opts;
    opts.epsilon = coef;  // K = exp(-C/coef): small coef -> sharp plan
    opts.max_iterations = 300000;
    opts.tolerance = 1e-11;
    const auto r = ot::RunSinkhorn(cost, p, q, opts).value();
    const double entropy = ot::PlanEntropy(r.plan);
    std::printf("%-12.0e %-14.4f %-18.2f %-10zu\n", coef, entropy,
                MeanRowSupport(r.plan), r.iterations);
    if (entropy < prev_entropy) monotone = false;
    prev_entropy = entropy;
  }
  std::printf("# reproduced: spread increases monotonically = %s\n",
              monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}
