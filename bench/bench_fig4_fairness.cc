// Figure 4: AUC vs ROD scatter for Adult and COMPAS — OTClean should sit
// in the top-left region (high AUC, low |log ROD|), dominating or matching
// the Capuchin baselines; "No repair" has the highest ROD.

#include "bench_fairness.h"

using namespace otclean;

namespace {

void RunDataset(const datagen::DatasetBundle& bundle, bool include_qclp,
                size_t folds) {
  std::printf("\n-- %s --\n", bundle.name.c_str());
  std::printf("%-16s %-8s %-10s\n", "method", "AUC", "|logROD|");
  bench::FairnessBenchConfig config;
  config.include_qclp = include_qclp;
  config.cv_folds = folds;
  double dirty_rod = 0.0, otclean_rod = 1e9, otclean_auc = 0.0;
  for (const auto& row : bench::RunFairnessBench(bundle, config)) {
    if (!row.ok) {
      std::printf("%-16s (failed)\n", row.method.c_str());
      continue;
    }
    std::printf("%-16s %-8.3f %-10.3f\n", row.method.c_str(), row.auc,
                row.abs_log_rod);
    if (row.method == "No repair") dirty_rod = row.abs_log_rod;
    if (row.method == "FastOTClean-C1") {
      otclean_rod = row.abs_log_rod;
      otclean_auc = row.auc;
    }
  }
  std::printf("# reproduced: OTClean reduces |logROD| (%.3f -> %.3f) "
              "with AUC %.3f\n",
              dirty_rod, otclean_rod, otclean_auc);
}

}  // namespace

int OTCLEAN_BENCH_MAIN(fig4_fairness) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 4: fairness (AUC vs ROD), Adult & COMPAS",
      "OTClean: low ROD at higher AUC than Cap(MF)/Cap(IC)/Cap(MS)/Dropped");

  const auto adult = datagen::MakeAdult(full ? 8000 : 2000, 21).value();
  RunDataset(adult, /*include_qclp=*/false, full ? 5 : 3);

  const auto compas = datagen::MakeCompas(full ? 10000 : 3000, 22).value();
  RunDataset(compas, /*include_qclp=*/true, full ? 5 : 3);
  return 0;
}
