// Figure 5: the ROD / EO / DP heat map per method — OTClean should lower
// all three fairness gaps relative to "No repair" on both datasets.

#include "bench_fairness.h"

using namespace otclean;

namespace {

void RunDataset(const datagen::DatasetBundle& bundle, bool include_qclp,
                size_t folds) {
  std::printf("\n-- %s --\n", bundle.name.c_str());
  std::printf("%-16s %-10s %-8s %-8s\n", "method", "|logROD|", "EO", "DP");
  bench::FairnessBenchConfig config;
  config.include_qclp = include_qclp;
  config.cv_folds = folds;
  double dirty[3] = {0, 0, 0}, clean[3] = {1e9, 1e9, 1e9};
  for (const auto& row : bench::RunFairnessBench(bundle, config)) {
    if (!row.ok) {
      std::printf("%-16s (failed)\n", row.method.c_str());
      continue;
    }
    std::printf("%-16s %-10.3f %-8.3f %-8.3f\n", row.method.c_str(),
                row.abs_log_rod, row.eo_gap, row.dp_gap);
    if (row.method == "No repair") {
      dirty[0] = row.abs_log_rod;
      dirty[1] = row.eo_gap;
      dirty[2] = row.dp_gap;
    }
    if (row.method == "FastOTClean-C1") {
      clean[0] = row.abs_log_rod;
      clean[1] = row.eo_gap;
      clean[2] = row.dp_gap;
    }
  }
  std::printf("# reproduced: ROD %.3f->%.3f, EO %.3f->%.3f, DP %.3f->%.3f\n",
              dirty[0], clean[0], dirty[1], clean[1], dirty[2], clean[2]);
}

}  // namespace

int OTCLEAN_BENCH_MAIN(fig5_fairness_metrics) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader("Figure 5: ROD / EO / DP per method",
                     "OTClean lowers all three metrics vs No-repair; "
                     "incidental EO/DP gains mirror the paper");

  const auto adult = datagen::MakeAdult(full ? 8000 : 1600, 31).value();
  RunDataset(adult, false, 3);
  const auto compas = datagen::MakeCompas(full ? 10000 : 2500, 32).value();
  RunDataset(compas, true, 3);
  return 0;
}
