// Figure 6: attribute noise on Car and Boston — AUC and F1 versus error
// rate for Clean / Dirty / BARAN / OTClean-blind / OTClean-BG.
//
// Reproduction target: the Dirty curve degrades as noise grows; both
// OTClean variants track the Clean curve far better than Dirty, with
// OTClean-BG >= OTClean-blind >= BARAN at high error rates.

#include "bench_cleaning.h"

using namespace otclean;

namespace {

void RunDataset(bench::CleaningSetup& setup,
                const std::vector<double>& rates) {
  std::printf("\n-- %s (noise on '%s' driven by '%s') --\n",
              setup.bundle.name.c_str(),
              setup.bundle.table.schema().column(setup.noisy_col).name.c_str(),
              setup.bundle.label_col.c_str());
  const auto clean_result = bench::Evaluate(setup, setup.train_clean);
  std::printf("Clean baseline: AUC=%.3f F1=%.3f\n", clean_result.auc,
              clean_result.f1);
  std::printf("%-8s | %-7s %-7s | %-7s %-7s | %-7s %-7s | %-7s %-7s\n",
              "rate(%)", "DirtyA", "DirtyF", "BaranA", "BaranF", "BlindA",
              "BlindF", "BG-A", "BG-F");
  for (const double rate : rates) {
    const auto dirty = bench::MakeDirtyTrain(setup, rate, 100 + rate * 100);
    const auto r_dirty = bench::Evaluate(setup, dirty);
    const auto baran = bench::BaranRepairTrain(setup, dirty).value();
    const auto r_baran = bench::Evaluate(setup, baran);
    const auto blind =
        bench::OtCleanRepairTrain(setup, dirty, false).value();
    const auto r_blind = bench::Evaluate(setup, blind);
    const auto bg = bench::OtCleanRepairTrain(setup, dirty, true).value();
    const auto r_bg = bench::Evaluate(setup, bg);
    std::printf("%-8.0f | %-7.3f %-7.3f | %-7.3f %-7.3f | %-7.3f %-7.3f | "
                "%-7.3f %-7.3f\n",
                rate * 100, r_dirty.auc, r_dirty.f1, r_baran.auc, r_baran.f1,
                r_blind.auc, r_blind.f1, r_bg.auc, r_bg.f1);
  }
}

}  // namespace

int OTCLEAN_BENCH_MAIN(fig6_attribute_noise) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 6: attribute noise (AUC & F1 vs error rate)",
      "Dirty degrades with noise; OTClean (both variants) stays near Clean; "
      "BG >= blind >= Baran at high rates");

  const std::vector<double> rates =
      full ? std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0}
           : std::vector<double>{0.0, 0.4, 0.8};

  auto car = bench::MakeCleaningSetup(
      datagen::MakeCar(full ? 1728 : 1400, 61).value(), "doors");
  RunDataset(car, rates);

  auto boston = bench::MakeCleaningSetup(
      datagen::MakeBoston(full ? 2000 : 1400, 62).value(), "B");
  RunDataset(boston, rates);
  return 0;
}
