// Figure 12: impact of the cost function on cleaning quality. A custom
// cost aligned with the noise process (cheap to correct the known-noisy
// attribute toward its true conditional) should outperform general-purpose
// costs (cosine on Boston, Pearson correlation on Car).

#include "bench_cleaning.h"

using namespace otclean;

namespace {

/// The "custom" cost of Section 9.1: corrections to the noisy attribute are
/// cheap (the noise process is known to corrupt it), all other moves are
/// expensive.
std::unique_ptr<ot::CostFunction> MakeCustomCost(
    const bench::CleaningSetup& setup) {
  const auto u_cols =
      setup.bundle.constraint.ResolveColumns(setup.bundle.table.schema())
          .value();
  std::vector<double> weights(u_cols.size(), 6.0);
  for (size_t i = 0; i < u_cols.size(); ++i) {
    if (u_cols[i] == setup.noisy_col) weights[i] = 0.15;
  }
  return std::make_unique<ot::WeightedEuclideanCost>(std::move(weights));
}

void RunDataset(bench::CleaningSetup& setup, const ot::CostFunction& generic,
                const char* generic_name, const std::vector<double>& rates) {
  std::printf("\n-- %s --\n", setup.bundle.name.c_str());
  const auto clean_result = bench::Evaluate(setup, setup.train_clean);
  std::printf("Clean baseline: AUC=%.3f\n", clean_result.auc);
  std::printf("%-8s %-10s %-14s %-14s\n", "rate(%)", "Dirty",
              "OTClean-custom", generic_name);

  const auto custom = MakeCustomCost(setup);
  for (const double rate : rates) {
    const auto dirty = bench::MakeDirtyTrain(setup, rate, 121);
    const double auc_dirty = bench::Evaluate(setup, dirty).auc;

    auto repair_with = [&](const ot::CostFunction* cost) {
      core::RepairOptions opts = bench::BenchRepairOptions();
      const auto r =
          core::RepairTable(dirty, setup.bundle.constraint, opts, cost);
      return r.ok() ? bench::Evaluate(setup, r->repaired).auc : -1.0;
    };
    std::printf("%-8.0f %-10.3f %-14.3f %-14.3f\n", rate * 100, auc_dirty,
                repair_with(custom.get()), repair_with(&generic));
  }
}

}  // namespace

int OTCLEAN_BENCH_MAIN(fig12_cost_functions) {
  const bool full = bench::FullScale(argc, argv);
  bench::PrintHeader(
      "Figure 12: cost-function impact on cleaning",
      "custom (noise-aware) cost approaches Clean; cosine/correlation costs "
      "trail it");

  const std::vector<double> rates =
      full ? std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0}
           : std::vector<double>{0.4, 0.8};

  auto boston = bench::MakeCleaningSetup(
      datagen::MakeBoston(full ? 2000 : 1400, 122).value(), "B");
  ot::CosineCost cosine;
  RunDataset(boston, cosine, "OTClean-cosine", rates);

  auto car = bench::MakeCleaningSetup(
      datagen::MakeCar(full ? 1728 : 1400, 123).value(), "doors");
  ot::CorrelationCost correlation;
  RunDataset(car, correlation, "OTClean-corr", rates);
  return 0;
}
