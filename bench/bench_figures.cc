// bench_figures — the combined paper-figure harness.
//
// Runs every bench_fig*/bench_table* experiment in-process (their entry
// points are renamed to RunBench_<name> via OTCLEAN_BENCH_MAIN when
// compiled with OTCLEAN_BENCH_FIGURES_COMBINED) and emits one
// BENCH_figures.json with per-figure wall times and exit codes, plus the
// exact-vs-Sinkhorn agreement gate:
//
//   For a set of figure-derived OT scenarios (regularization mixtures,
//   distortion marginals, CI-projection targets of the scaling/fairness
//   datasets), the exact LP transport cost (ot::ExactOtDistance → streamed
//   network simplex) and the small-ε log-domain Sinkhorn plan cost
//   ⟨C, π_ε⟩ must agree within the documented tolerance:
//       |sinkhorn − exact| ≤ max(kGateRelTol · exact, kGateAbsTol · C̄)
//   with ε = kGateEpsilonScale · C̄ (C̄ = mean restricted cost). The bound
//   has both a relative arm (entropic bias shrinks like ε log n relative
//   to the cost scale) and an absolute arm for scenarios whose exact cost
//   is near zero.
//
// A gate failure — or any figure experiment exiting nonzero — fails the
// binary, making this the repo's end-to-end replication regression gate
// (the CI figures-smoke job runs it on every PR).
//
// Usage: bench_figures [--full] [--out PATH] [--gate-only]
//   --full       paper-scale grids (slow); default is the smoke grid
//   --out PATH   where to write the JSON (default BENCH_figures.json)
//   --gate-only  skip the figure experiments, run only the agreement gate

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

// Entry points of the figure suite (renamed mains; see OTCLEAN_BENCH_MAIN).
int RunBench_fig1_regularization(int argc, char** argv);
int RunBench_fig4_fairness(int argc, char** argv);
int RunBench_fig5_fairness_metrics(int argc, char** argv);
int RunBench_fig6_attribute_noise(int argc, char** argv);
int RunBench_fig7_mar_boston(int argc, char** argv);
int RunBench_fig8_mnar_car(int argc, char** argv);
int RunBench_fig9_distortion(int argc, char** argv);
int RunBench_fig10_scaling(int argc, char** argv);
int RunBench_fig11_optimizations(int argc, char** argv);
int RunBench_fig12_cost_functions(int argc, char** argv);
int RunBench_fig13_14_qclp_scaling(int argc, char** argv);
int RunBench_fig15_background(int argc, char** argv);
int RunBench_fig16_17_missing_extra(int argc, char** argv);
int RunBench_table2_datasets(int argc, char** argv);
int RunBench_table3_runtime(int argc, char** argv);

using namespace otclean;

namespace {

// Documented gate tolerances (mirrored in README "Replicating the paper's
// figures"). ε is scaled by the mean restricted cost so "small ε" means
// the same thing across scenarios with different cost magnitudes.
constexpr double kGateEpsilonScale = 1e-3;
constexpr double kGateRelTol = 0.02;
constexpr double kGateAbsTol = 2e-3;

struct FigBench {
  const char* name;
  int (*fn)(int, char**);
};

const FigBench kBenches[] = {
    {"fig1_regularization", RunBench_fig1_regularization},
    {"fig4_fairness", RunBench_fig4_fairness},
    {"fig5_fairness_metrics", RunBench_fig5_fairness_metrics},
    {"fig6_attribute_noise", RunBench_fig6_attribute_noise},
    {"fig7_mar_boston", RunBench_fig7_mar_boston},
    {"fig8_mnar_car", RunBench_fig8_mnar_car},
    {"fig9_distortion", RunBench_fig9_distortion},
    {"fig10_scaling", RunBench_fig10_scaling},
    {"fig11_optimizations", RunBench_fig11_optimizations},
    {"fig12_cost_functions", RunBench_fig12_cost_functions},
    {"fig13_14_qclp_scaling", RunBench_fig13_14_qclp_scaling},
    {"fig15_background", RunBench_fig15_background},
    {"fig16_17_missing_extra", RunBench_fig16_17_missing_extra},
    {"table2_datasets", RunBench_table2_datasets},
    {"table3_runtime", RunBench_table3_runtime},
};

struct BenchRun {
  std::string name;
  int exit_code = 0;
  double seconds = 0.0;
};

// ------------------------------------------------------- gate scenarios --

struct GateScenario {
  std::string name;
  prob::JointDistribution p;
  prob::JointDistribution q;
  size_t num_attrs = 0;
};

struct GateResult {
  std::string name;
  double exact_cost = 0.0;
  double sinkhorn_cost = 0.0;
  double abs_err = 0.0;
  double rel_err = 0.0;
  double epsilon = 0.0;
  bool pass = false;
};

/// Discretized two-component Gaussian mixture over `bins` cells (the
/// Fig. 1 source/target shapes).
prob::JointDistribution MixtureHistogram(const prob::Domain& dom, double m1,
                                         double m2, double sd) {
  prob::JointDistribution p(dom);
  const size_t bins = dom.TotalSize();
  for (size_t i = 0; i < bins; ++i) {
    const double x =
        -4.0 + 8.0 * (static_cast<double>(i) + 0.5) / static_cast<double>(bins);
    p[i] = 0.5 * std::exp(-0.5 * (x - m1) * (x - m1) / (sd * sd)) +
           0.5 * std::exp(-0.5 * (x - m2) * (x - m2) / (sd * sd));
  }
  p.Normalize();
  return p;
}

/// Empirical distribution of a synthetic CI dataset and its I-projection
/// onto the constraint manifold — the (P, Q) pair every repair figure
/// transports between.
GateScenario CiScenario(const std::string& name, size_t num_rows,
                        size_t num_z, double violation, uint64_t seed) {
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = num_rows;
  gen.num_z_attrs = num_z;
  gen.z_card = 3;
  gen.violation = violation;
  gen.seed = seed;
  const auto table = datagen::MakeScalingDataset(gen).value();
  std::vector<std::string> zs;
  for (size_t i = 0; i < num_z; ++i) zs.push_back("z" + std::to_string(i));
  const core::CiConstraint ci({"x"}, {"y"}, zs);
  const auto u_cols = ci.ResolveColumns(table.schema()).value();

  GateScenario s;
  s.name = name;
  s.p = table.Empirical(u_cols);
  s.q = prob::CiProjection(s.p, ci.SpecInProjectedDomain());
  s.num_attrs = u_cols.size();
  return s;
}

std::vector<GateScenario> BuildGateScenarios() {
  std::vector<GateScenario> scenarios;

  {
    // Fig. 1: transport between two 1-D Gaussian-mixture histograms.
    const prob::Domain dom = prob::Domain::FromCardinalities({32});
    GateScenario s;
    s.name = "fig1_gaussian_mixtures";
    s.p = MixtureHistogram(dom, -2.0, 2.0, 0.7);
    s.q = MixtureHistogram(dom, -1.0, 3.0, 0.9);
    s.num_attrs = 1;
    scenarios.push_back(std::move(s));
  }
  {
    // Fig. 9: statistical-distortion EMD between a skewed and a uniform
    // marginal over a 2-attribute grid.
    const prob::Domain dom = prob::Domain::FromCardinalities({4, 4});
    GateScenario s;
    s.name = "fig9_distortion_marginals";
    s.p = prob::JointDistribution(dom);
    for (size_t c = 0; c < dom.TotalSize(); ++c) {
      s.p[c] = 1.0 / static_cast<double>(1 + c);  // skew toward low cells
    }
    s.p.Normalize();
    s.q = prob::JointDistribution::Uniform(dom);
    s.num_attrs = 2;
    scenarios.push_back(std::move(s));
  }
  // Repair-shaped scenarios: empirical P vs CI-projected Q, at the three
  // dataset shapes the scaling/fairness/runtime figures sweep.
  scenarios.push_back(CiScenario("fig10_scaling_ci", 3000, 1, 0.5, 101));
  scenarios.push_back(CiScenario("fig4_fairness_ci", 2000, 2, 0.8, 17));
  scenarios.push_back(CiScenario("table3_runtime_ci", 4000, 2, 0.3, 23));
  return scenarios;
}

Result<GateResult> RunGateScenario(const GateScenario& s) {
  GateResult g;
  g.name = s.name;
  ot::EuclideanCost cost(s.num_attrs);

  ot::ExactOtOptions exact_opts;
  exact_opts.max_pivots = 200000;
  OTCLEAN_ASSIGN_OR_RETURN(g.exact_cost,
                           ot::ExactOtDistance(s.p, s.q, cost, exact_opts));

  // Support-restricted dense cost for the Sinkhorn side — the same
  // restriction ExactOtDistance applies internally.
  const prob::Domain& dom = s.p.domain();
  std::vector<size_t> rows, cols;
  for (size_t c = 0; c < dom.TotalSize(); ++c) {
    if (s.p[c] > 0.0) rows.push_back(c);
    if (s.q[c] > 0.0) cols.push_back(c);
  }
  const linalg::Matrix c_mat = ot::BuildCostMatrix(dom, rows, cols, cost);
  double mean_cost = 0.0;
  for (size_t i = 0; i < c_mat.rows(); ++i) {
    for (size_t j = 0; j < c_mat.cols(); ++j) mean_cost += c_mat(i, j);
  }
  mean_cost /= static_cast<double>(c_mat.rows() * c_mat.cols());

  linalg::Vector pv(rows.size()), qv(cols.size());
  for (size_t i = 0; i < rows.size(); ++i) pv[i] = s.p[rows[i]];
  for (size_t j = 0; j < cols.size(); ++j) qv[j] = s.q[cols[j]];

  ot::SinkhornOptions sink;
  sink.epsilon = kGateEpsilonScale * mean_cost;
  sink.log_domain = true;  // e^{−C/ε} is far out of double range at this ε
  sink.relaxed = false;
  sink.max_iterations = 50000;
  sink.tolerance = 1e-11;
  sink.num_threads = 1;
  OTCLEAN_ASSIGN_OR_RETURN(ot::SinkhornResult r,
                           ot::RunSinkhorn(c_mat, pv, qv, sink));
  g.sinkhorn_cost = r.transport_cost;
  g.epsilon = sink.epsilon;
  g.abs_err = std::fabs(g.sinkhorn_cost - g.exact_cost);
  g.rel_err = g.exact_cost > 0.0 ? g.abs_err / g.exact_cost : 0.0;
  g.pass = g.abs_err <=
           std::max(kGateRelTol * g.exact_cost, kGateAbsTol * mean_cost);
  return g;
}

// ------------------------------------------------------------ reporting --

std::string JsonNum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

bool WriteJson(const std::string& path, bool full,
               const std::vector<BenchRun>& runs,
               const std::vector<GateResult>& gate, bool gate_pass,
               bool all_pass) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  out << "  \"bench\": \"figures\",\n";
  out << "  \"mode\": \"" << (full ? "full" : "smoke") << "\",\n";
  out << "  \"figures\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    out << "    {\"name\": \"" << runs[i].name
        << "\", \"exit_code\": " << runs[i].exit_code
        << ", \"seconds\": " << JsonNum(runs[i].seconds) << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"gate\": {\n";
  out << "    \"description\": \"exact LP vs small-epsilon log-domain "
         "Sinkhorn plan cost\",\n";
  out << "    \"epsilon_scale\": " << JsonNum(kGateEpsilonScale)
      << ",\n    \"rel_tolerance\": " << JsonNum(kGateRelTol)
      << ",\n    \"abs_tolerance_x_mean_cost\": " << JsonNum(kGateAbsTol)
      << ",\n";
  out << "    \"scenarios\": [\n";
  for (size_t i = 0; i < gate.size(); ++i) {
    const GateResult& g = gate[i];
    out << "      {\"name\": \"" << g.name << "\", \"exact_cost\": "
        << JsonNum(g.exact_cost)
        << ", \"sinkhorn_cost\": " << JsonNum(g.sinkhorn_cost)
        << ", \"epsilon\": " << JsonNum(g.epsilon)
        << ", \"abs_err\": " << JsonNum(g.abs_err)
        << ", \"rel_err\": " << JsonNum(g.rel_err) << ", \"pass\": "
        << (g.pass ? "true" : "false") << "}"
        << (i + 1 < gate.size() ? "," : "") << "\n";
  }
  out << "    ],\n";
  out << "    \"pass\": " << (gate_pass ? "true" : "false") << "\n";
  out << "  },\n";
  out << "  \"pass\": " << (all_pass ? "true" : "false") << "\n";
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false, gate_only = false;
  std::string out_path = "BENCH_figures.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--gate-only") == 0) {
      gate_only = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_figures [--full] [--out PATH] "
                   "[--gate-only]\n");
      return 2;
    }
  }

  // Forward only --full: the figure entry points read nothing else.
  std::vector<char*> fig_argv{argv[0]};
  char full_flag[] = "--full";
  if (full) fig_argv.push_back(full_flag);

  std::vector<BenchRun> runs;
  bool benches_ok = true;
  if (!gate_only) {
    for (const FigBench& b : kBenches) {
      std::printf("\n######## %s ########\n", b.name);
      std::fflush(stdout);
      WallTimer timer;
      BenchRun run;
      run.name = b.name;
      run.exit_code =
          b.fn(static_cast<int>(fig_argv.size()), fig_argv.data());
      run.seconds = timer.ElapsedSeconds();
      if (run.exit_code != 0) benches_ok = false;
      runs.push_back(std::move(run));
    }
  }

  std::printf("\n######## exact-vs-sinkhorn agreement gate ########\n");
  std::vector<GateResult> gate;
  bool gate_pass = true;
  for (const GateScenario& s : BuildGateScenarios()) {
    Result<GateResult> g = RunGateScenario(s);
    if (!g.ok()) {
      std::fprintf(stderr, "gate scenario %s: %s\n", s.name.c_str(),
                   g.status().ToString().c_str());
      GateResult failed;
      failed.name = s.name;
      gate.push_back(failed);
      gate_pass = false;
      continue;
    }
    std::printf("%-24s exact=%-10.6f sinkhorn=%-10.6f rel_err=%-8.2e %s\n",
                g->name.c_str(), g->exact_cost, g->sinkhorn_cost, g->rel_err,
                g->pass ? "PASS" : "FAIL");
    if (!g->pass) gate_pass = false;
    gate.push_back(std::move(g).value());
  }

  const bool all_pass = benches_ok && gate_pass;
  if (!WriteJson(out_path, full, runs, gate, gate_pass, all_pass)) {
    std::fprintf(stderr, "bench_figures: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("\n# bench_figures: %zu figures, %zu gate scenarios -> %s "
              "(%s)\n",
              runs.size(), gate.size(), out_path.c_str(),
              all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}
