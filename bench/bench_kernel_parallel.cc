// Micro-bench for the TransportKernel engine: serial vs multi-threaded
// Sinkhorn throughput on dense and truncated-sparse kernels.
//
// Reports per-configuration wall time, iterations/second, and the speedup
// over the single-thread baseline. Also cross-checks that every thread
// count produced the identical plan (the engine's bit-compatibility
// guarantee) — a silent mismatch fails the run.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "linalg/parallel_for.h"

using namespace otclean;

namespace {

linalg::Matrix RandomCost(size_t m, size_t n, Rng& rng) {
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * 3.0;
  return cost;
}

linalg::Vector RandomMarginal(size_t n, Rng& rng) {
  linalg::Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
  v.Normalize();
  return v;
}

struct RunStats {
  double seconds = 0.0;
  size_t iterations = 0;
  linalg::Matrix plan;
};

RunStats TimeDense(const linalg::Matrix& cost, const linalg::Vector& p,
                   const linalg::Vector& q, size_t threads) {
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.relaxed = true;
  opts.lambda = 5.0;
  opts.tolerance = 1e-9;
  opts.num_threads = threads;
  WallTimer timer;
  auto r = ot::RunSinkhorn(cost, p, q, opts).value();
  RunStats stats;
  stats.seconds = timer.ElapsedSeconds();
  stats.iterations = r.iterations;
  stats.plan = std::move(r.plan);
  return stats;
}

RunStats TimeSparse(const linalg::Matrix& cost, const linalg::Vector& p,
                    const linalg::Vector& q, size_t threads) {
  ot::SinkhornOptions opts;
  opts.epsilon = 0.1;
  opts.relaxed = true;
  opts.lambda = 5.0;
  opts.tolerance = 1e-9;
  opts.num_threads = threads;
  WallTimer timer;
  auto r = ot::RunSinkhornSparse(cost, p, q, opts, /*kernel_cutoff=*/1e-6)
               .value();
  RunStats stats;
  stats.seconds = timer.ElapsedSeconds();
  stats.iterations = r.iterations;
  stats.plan = r.plan.ToDense();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::FullScale(argc, argv);
  const size_t n = full ? 2000 : 600;
  const size_t hw = linalg::ResolveThreadCount(0);

  bench::PrintHeader(
      "TransportKernel: serial vs row-blocked parallel Sinkhorn",
      "near-linear kernel speedup with cores; identical plans at any "
      "thread count");
  std::printf("# problem: %zux%zu, hardware threads: %zu\n", n, n, hw);

  Rng rng(7);
  const linalg::Matrix cost = RandomCost(n, n, rng);
  const linalg::Vector p = RandomMarginal(n, rng);
  const linalg::Vector q = RandomMarginal(n, rng);

  bool identical = true;
  std::printf("%-8s %-10s %-12s %-12s %-10s\n", "kernel", "threads",
              "seconds", "iters_per_s", "speedup");
  // Always include 2 threads (even on a 1-core box) so the identical-plan
  // cross-check exercises the parallel path everywhere.
  std::vector<size_t> thread_counts{1, 2};
  if (hw > 2) thread_counts.push_back(hw);
  for (const bool sparse : {false, true}) {
    RunStats base;
    for (size_t threads : thread_counts) {
      const RunStats stats = sparse ? TimeSparse(cost, p, q, threads)
                                    : TimeDense(cost, p, q, threads);
      if (threads == 1) {
        base = stats;
      } else if (!stats.plan.ApproxEquals(base.plan, 0.0)) {
        identical = false;
      }
      std::printf("%-8s %-10zu %-12.3f %-12.0f %-10.2f\n",
                  sparse ? "sparse" : "dense", threads, stats.seconds,
                  static_cast<double>(stats.iterations) /
                      (stats.seconds > 0.0 ? stats.seconds : 1e-9),
                  threads == 1 ? 1.0 : base.seconds / stats.seconds);
    }
  }
  std::printf("# plans identical across thread counts = %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
