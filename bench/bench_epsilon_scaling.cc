// ε-annealing + f32-tier bench for the plain Sinkhorn entry points: how
// many iterations a sharp-ε solve costs cold vs warmed through an
// EpsilonSchedule, and what the f32 storage tier buys per iteration, at
// dense and truncated-sparse kernels.
//
// Four configurations per grid point: {dense, sparse} × {f64, f32}, each
// solved twice — fixed ε (cold start) and annealed (larger-ε stages warm
// the final solve). Reported per row: final-ε iterations of both runs,
// the annealed run's total including stage iterations, and wall times.
//
// The iteration reduction is HARD-GATED per (kind, precision) group: the
// annealed totals (stages + final) summed over the problem sizes must be
// strictly below the fixed-ε totals, and every annealed run must
// converge, or the bench fails (exit 1) — so a regression in the
// warm-start rescaling or the stage plumbing cannot land silently. The
// gate sums over sizes rather than testing each row because per-size
// iteration counts move by a few iterations under rounding-level
// perturbation (SIMD tier, f32 narrowing); the summed margin is stable.
// Wall-clock ratios (f32 vs f64) are reported but not gated — they
// depend on the machine.
//
// Results are written to BENCH_epsilon_scaling.json.
//
// Flags:
//   --full     add the 2048² grid point (slower)
//   --smoke    256² only: CI smoke mode
//   (any --benchmark_min_time=... flag is treated as --smoke)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "linalg/precision.h"
#include "linalg/simd.h"
#include "ot/sinkhorn.h"

using namespace otclean;

namespace {

/// Squared distance on the unit line, range [0, 1]. Deliberately smooth
/// and underflow-safe: max C/ε = 100 at the final ε, far from the
/// e^{-708} double cliff, so convergence is in the regular (plateau-free)
/// regime where iteration counts respond smoothly to the warm start and
/// the gate margin is reproducible. Sharper regimes (C/ε ≳ 700) show
/// far larger annealing wins, but through chaotic stall dynamics that no
/// deterministic gate can sit on.
linalg::Matrix BenchCost(size_t n) {
  linalg::Matrix cost(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double d = (static_cast<double>(i) - static_cast<double>(j)) /
                       static_cast<double>(n);
      cost(i, j) = d * d;
    }
  }
  return cost;
}

linalg::Vector RandomMarginal(size_t n, Rng& rng) {
  linalg::Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.05 + rng.NextDouble();
  v.Normalize();
  return v;
}

struct RunStats {
  size_t final_iterations = 0;
  size_t stage_iterations = 0;
  double ms = 0.0;
  bool converged = false;
  size_t total() const { return final_iterations + stage_iterations; }
};

struct BenchRow {
  const char* kind;       ///< "dense" | "sparse"
  const char* precision;  ///< "f64" | "f32"
  size_t n = 0;
  RunStats fixed;
  RunStats annealed;
};

size_t StageSum(const std::vector<ot::EpsilonAnnealStage>& stages) {
  size_t sum = 0;
  for (const ot::EpsilonAnnealStage& s : stages) sum += s.iterations;
  return sum;
}

/// One solve of the given configuration; ms is a single wall measurement
/// (iteration counts, the gated quantity, are deterministic).
RunStats RunOnce(const linalg::Matrix& cost, const linalg::Vector& p,
                 const linalg::Vector& q, const ot::SinkhornOptions& options,
                 bool sparse, double cutoff) {
  RunStats stats;
  WallTimer timer;
  if (sparse) {
    auto r = ot::RunSinkhornSparse(cost, p, q, options, cutoff);
    if (!r.ok()) {
      std::fprintf(stderr, "sparse solve failed: %s\n",
                   r.status().ToString().c_str());
      return stats;
    }
    stats.ms = timer.ElapsedSeconds() * 1e3;
    stats.final_iterations = r->iterations;
    stats.stage_iterations = StageSum(r->anneal_stages);
    stats.converged = r->converged;
  } else {
    auto r = ot::RunSinkhorn(cost, p, q, options);
    if (!r.ok()) {
      std::fprintf(stderr, "dense solve failed: %s\n",
                   r.status().ToString().c_str());
      return stats;
    }
    stats.ms = timer.ElapsedSeconds() * 1e3;
    stats.final_iterations = r->iterations;
    stats.stage_iterations = StageSum(r->anneal_stages);
    stats.converged = r->converged;
  }
  return stats;
}

void WriteJson(const std::string& path, const std::vector<BenchRow>& rows,
               bool gates_ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"epsilon_scaling\",\n");
  std::fprintf(f, "  \"isa\": \"%s\",\n", linalg::simd::ActiveIsaName());
  std::fprintf(f, "  \"single_thread\": true,\n");
  std::fprintf(f, "  \"iteration_gates_ok\": %s,\n",
               gates_ok ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"kind\": \"%s\", \"precision\": \"%s\", \"n\": %zu, "
        "\"fixed_iterations\": %zu, \"fixed_ms\": %.3f, "
        "\"annealed_final_iterations\": %zu, "
        "\"annealed_stage_iterations\": %zu, "
        "\"annealed_total_iterations\": %zu, \"annealed_ms\": %.3f, "
        "\"iteration_reduction\": %.2f}%s\n",
        r.kind, r.precision, r.n, r.fixed.total(), r.fixed.ms,
        r.annealed.final_iterations, r.annealed.stage_iterations,
        r.annealed.total(), r.annealed.ms,
        r.annealed.total() > 0
            ? static_cast<double>(r.fixed.total()) /
                  static_cast<double>(r.annealed.total())
            : 0.0,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strncmp(argv[i], "--benchmark_min_time", 20) == 0) {
      smoke = true;
    }
  }
  const bool full = bench::FullScale(argc, argv);

  bench::PrintHeader(
      "epsilon annealing + f32 kernel tier on plain Sinkhorn",
      "iterations to tolerance, fixed sharp ε vs annealed warm start");

  std::vector<size_t> sizes;
  if (smoke) {
    sizes = {256};
  } else {
    sizes = {256, 512, 1024};
    if (full) sizes.push_back(2048);
  }

  // A sharp final ε with a tight tolerance, solved to the geometric tail.
  // The schedule is a single halving stage with loose convergence and a
  // hard cap: the stage is warm-up, not a solve. In this regular regime
  // the rescaled coarse-ε potentials land the final solve 1–2 error
  // decades ahead of a cold start, which buys more final-ε iterations
  // (the expensive kind — the contraction rate degrades as ε sharpens)
  // than the cheap ε=0.02 stage costs.
  ot::SinkhornOptions base;
  base.epsilon = 0.01;
  base.tolerance = 1e-8;
  base.max_iterations = 200000;
  base.num_threads = 1;

  ot::EpsilonSchedule schedule;
  schedule.initial_epsilon = 0.02;
  schedule.decay = 0.5;
  schedule.stage_tolerance = 1e-3;
  schedule.stage_max_iterations = 100;

  // Truncation cutoff in kernel space at the FINAL ε: e^{-C/0.01} with
  // costs in [0, 1] spans down to e^{-100}; 1e-30 keeps C ≲ 0.69 — a
  // band around the diagonal holding ~69% of entries. At the stage ε the
  // same cutoff keeps everything, so the stage kernel is a full band.
  const double cutoff = 1e-30;

  std::vector<BenchRow> rows;
  Rng rng(29);

  std::printf("%-7s %-5s %-6s %-11s %-18s %-10s %-10s %-7s\n", "kind",
              "prec", "n", "fixed_iter", "annealed(st+fin)", "fixed_ms",
              "anneal_ms", "reduce");
  for (const size_t n : sizes) {
    const linalg::Matrix cost = BenchCost(n);
    const linalg::Vector p = RandomMarginal(n, rng);
    const linalg::Vector q = RandomMarginal(n, rng);

    for (const bool sparse : {false, true}) {
      for (const linalg::Precision precision :
           {linalg::Precision::kFloat64, linalg::Precision::kFloat32}) {
        BenchRow row;
        row.kind = sparse ? "sparse" : "dense";
        row.precision =
            precision == linalg::Precision::kFloat32 ? "f32" : "f64";
        row.n = n;

        ot::SinkhornOptions fixed = base;
        fixed.precision = precision;
        row.fixed = RunOnce(cost, p, q, fixed, sparse, cutoff);

        ot::SinkhornOptions annealed = fixed;
        annealed.epsilon_schedule = schedule;
        row.annealed = RunOnce(cost, p, q, annealed, sparse, cutoff);

        char anneal_note[40];
        std::snprintf(anneal_note, sizeof anneal_note, "%zu (%zu+%zu)",
                      row.annealed.total(), row.annealed.stage_iterations,
                      row.annealed.final_iterations);
        std::printf(
            "%-7s %-5s %-6zu %-11zu %-18s %-10.2f %-10.2f %-7.2f\n",
            row.kind, row.precision, n, row.fixed.total(), anneal_note,
            row.fixed.ms, row.annealed.ms,
            static_cast<double>(row.fixed.total()) /
                static_cast<double>(row.annealed.total()));
        rows.push_back(row);
      }
    }
    // f32-vs-f64 wall-clock at this n (fixed-ε runs; not gated).
    for (size_t i = rows.size() - 4; i + 1 < rows.size(); i += 2) {
      const BenchRow& f64_row = rows[i];
      const BenchRow& f32_row = rows[i + 1];
      std::printf("# %s %zu: f32 fixed-ε wall %.2f ms vs f64 %.2f ms "
                  "(%.2fx)\n",
                  f64_row.kind, n, f32_row.fixed.ms, f64_row.fixed.ms,
                  f32_row.fixed.ms > 0.0 ? f64_row.fixed.ms / f32_row.fixed.ms
                                         : 0.0);
    }
  }

  // The gate: per (kind, precision) group, annealed totals summed over
  // the sizes must beat the fixed totals, and every run must converge.
  bool gates_ok = true;
  for (const char* kind : {"dense", "sparse"}) {
    for (const char* precision : {"f64", "f32"}) {
      size_t fixed_sum = 0, annealed_sum = 0;
      bool all_converged = true;
      for (const BenchRow& row : rows) {
        if (std::strcmp(row.kind, kind) != 0 ||
            std::strcmp(row.precision, precision) != 0) {
          continue;
        }
        fixed_sum += row.fixed.total();
        annealed_sum += row.annealed.total();
        all_converged &= row.fixed.converged && row.annealed.converged;
      }
      const bool group_ok = all_converged && annealed_sum < fixed_sum;
      std::printf("# gate %s/%s: fixed %zu vs annealed %zu (%.2fx)%s — %s\n",
                  kind, precision, fixed_sum, annealed_sum,
                  annealed_sum > 0 ? static_cast<double>(fixed_sum) /
                                         static_cast<double>(annealed_sum)
                                   : 0.0,
                  all_converged ? "" : " [non-converged run]",
                  group_ok ? "ok" : "FAIL");
      gates_ok &= group_ok;
    }
  }

  WriteJson("BENCH_epsilon_scaling.json", rows, gates_ok);
  std::printf("# iteration gates passed = %s\n", gates_ok ? "yes" : "NO");
  return gates_ok ? 0 : 1;
}
